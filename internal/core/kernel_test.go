package core

import (
	"errors"
	"testing"
)

// batteryKernels is the explicit list of kernels the differential battery
// exercises. TestKernelRegistryCovered pins it against the live registry,
// so registering a new kernel without adding it here (and thereby to the
// battery) fails CI.
var batteryKernels = []string{
	KernelDelta,
	KernelDeltaStar,
	KernelDijkstra,
	KernelHeap,
	KernelMSBFS,
	KernelParDij,
	KernelRho,
	KernelSweep,
}

// TestKernelRegistryCovered is the registry-completeness check: every
// registered kernel must appear in the differential battery.
func TestKernelRegistryCovered(t *testing.T) {
	reg := Kernels()
	if len(reg) != len(batteryKernels) {
		t.Fatalf("registry has kernels %v, battery covers %v — add new kernels to batteryKernels", reg, batteryKernels)
	}
	for i, name := range reg {
		if batteryKernels[i] != name {
			t.Fatalf("registry has kernels %v, battery covers %v", reg, batteryKernels)
		}
	}
}

// TestKernelsMatchDijkstra is the differential battery of the kernel
// registry: every registered kernel must produce checksum-identical
// distance matrices to the default modified Dijkstra on the power-law /
// grid / disconnected graphs, directed and undirected, weighted and
// unweighted, at 1, 2 and 8 workers. Kernels that reject a combination via
// Supports (the single-weighting lane kernels) are skipped there — the
// completeness test above ensures every kernel still runs somewhere.
func TestKernelsMatchDijkstra(t *testing.T) {
	for _, family := range batteryFamilies {
		for _, directed := range []bool{false, true} {
			for _, weighted := range []bool{false, true} {
				g := batteryGraph(t, family, directed, weighted, 7)
				base, err := Solve(g, ParAPSP, Options{Workers: 2, Batch: BatchOff})
				if err != nil {
					t.Fatalf("%s baseline: %v", family, err)
				}
				want := base.D.Checksum()
				if base.Kernel != KernelDijkstra {
					t.Fatalf("baseline ran kernel %q, want %q", base.Kernel, KernelDijkstra)
				}
				for _, name := range batteryKernels {
					kern, err := LookupKernel(name)
					if err != nil {
						t.Fatal(err)
					}
					if kern.Supports(g, Options{}) != nil {
						continue // e.g. msbfs on a weighted graph
					}
					for _, workers := range []int{1, 2, 8} {
						res, err := Solve(g, ParAPSP, Options{Workers: workers, Kernel: name})
						if err != nil {
							t.Fatalf("%s/%s/w=%d: %v", family, name, workers, err)
						}
						if res.Kernel != name {
							t.Fatalf("%s/%s/w=%d: ran kernel %q", family, name, workers, res.Kernel)
						}
						if got := res.D.Checksum(); got != want {
							t.Errorf("%s directed=%v weighted=%v kernel=%s workers=%d: checksum %x, dijkstra %x",
								family, directed, weighted, name, workers, got, want)
						}
						if !res.D.Equal(base.D) {
							t.Fatalf("%s/%s/w=%d: distance matrices differ", family, name, workers)
						}
					}
				}
			}
		}
	}
}

// TestKernelSubsetMatchesSolve runs every kernel through SolveSubset and
// checks the subset rows against the full solve, covering the second
// destination type (the summary-less subset row block).
func TestKernelSubsetMatchesSolve(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := batteryGraph(t, "power-law", false, weighted, 11)
		full, err := Solve(g, ParAPSP, Options{Workers: 2, Batch: BatchOff})
		if err != nil {
			t.Fatal(err)
		}
		sources := []int32{0, 3, 17, 42, 191, 250}
		for _, name := range batteryKernels {
			kern, err := LookupKernel(name)
			if err != nil {
				t.Fatal(err)
			}
			if kern.Supports(g, Options{}) != nil {
				continue
			}
			sub, err := SolveSubset(g, sources, Options{Workers: 2, Kernel: name})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if sub.Kernel != name {
				t.Fatalf("subset ran kernel %q, want %q", sub.Kernel, name)
			}
			for _, s := range sources {
				row := sub.Row(s)
				for v := 0; v < g.N(); v++ {
					if row[v] != full.D.At(int(s), v) {
						t.Fatalf("weighted=%v kernel=%s: D[%d][%d] = %d, want %d",
							weighted, name, s, v, row[v], full.D.At(int(s), v))
					}
				}
			}
		}
	}
}

// TestKernelOptionValidation pins the dispatch errors of resolveKernel.
func TestKernelOptionValidation(t *testing.T) {
	g := batteryGraph(t, "grid", false, true, 3)
	cases := []struct {
		name string
		alg  Algorithm
		opts Options
	}{
		{"unknown kernel", ParAPSP, Options{Kernel: "nope"}},
		{"heapqueue contradicts kernel", ParAPSP, Options{HeapQueue: true, Kernel: KernelDelta}},
		{"adaptive cannot swap kernels", SeqAdaptive, Options{Kernel: KernelDelta}},
		{"msbfs needs unweighted", ParAPSP, Options{Kernel: KernelMSBFS}},
		{"delta cannot track paths", ParAPSP, Options{Kernel: KernelDelta, TrackPaths: true}},
		{"sweep cannot disable reuse", ParAPSP, Options{Kernel: KernelSweep, DisableRowReuse: true}},
		{"heapqueue contradicts auto", ParAPSP, Options{HeapQueue: true, Kernel: KernelAuto}},
		{"adaptive cannot run auto", SeqAdaptive, Options{Kernel: KernelAuto}},
		{"pardij cannot track paths", ParAPSP, Options{Kernel: KernelParDij, TrackPaths: true}},
		{"deltastar has no paper queue", ParAPSP, Options{Kernel: KernelDeltaStar, PaperQueue: true}},
		{"auto contradicts forced batch", ParAPSP, Options{Kernel: KernelAuto, Batch: BatchForce}},
	}
	for _, tc := range cases {
		if _, err := Solve(g, tc.alg, tc.opts); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", tc.name, err)
		}
	}
	// HeapQueue with the matching explicit kernel name is fine.
	if _, err := Solve(g, ParAPSP, Options{HeapQueue: true, Kernel: KernelHeap}); err != nil {
		t.Errorf("HeapQueue + Kernel=heap: %v", err)
	}
	// Delta composes with the reuse ablation (it just never folds).
	res, err := Solve(g, ParAPSP, Options{Kernel: KernelDelta, DisableRowReuse: true})
	if err != nil {
		t.Fatalf("delta without reuse: %v", err)
	}
	base, err := Solve(g, ParAPSP, Options{Batch: BatchOff})
	if err != nil {
		t.Fatal(err)
	}
	if res.D.Checksum() != base.D.Checksum() {
		t.Error("delta without reuse diverged from baseline")
	}
}

// TestKernelAutoResolves pins the adaptive selector: "auto" always
// resolves to a concrete registry kernel (Result.Kernel never reports
// "auto"), the choice solves exactly, and the documented table rows hold
// on their signature graphs. SolveSubset with a conflicting Batch: Force
// is the registry-misuse case — auto owns the engine choice.
func TestKernelAutoResolves(t *testing.T) {
	for _, family := range batteryFamilies {
		for _, weighted := range []bool{false, true} {
			g := batteryGraph(t, family, false, weighted, 13)
			base, err := Solve(g, ParAPSP, Options{Workers: 2, Batch: BatchOff})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(g, ParAPSP, Options{Workers: 2, Kernel: KernelAuto})
			if err != nil {
				t.Fatalf("%s weighted=%v: %v", family, weighted, err)
			}
			if res.Kernel == KernelAuto || res.Kernel == "" {
				t.Fatalf("%s: Result.Kernel = %q, want a resolved registry name", family, res.Kernel)
			}
			if _, err := LookupKernel(res.Kernel); err != nil {
				t.Fatalf("%s: auto resolved to unregistered kernel %q", family, res.Kernel)
			}
			if res.D.Checksum() != base.D.Checksum() {
				t.Errorf("%s weighted=%v: auto (%s) diverged from baseline", family, weighted, res.Kernel)
			}
		}
	}

	// Table rows on signature graphs: unweighted scalar-regime solves pick
	// dijkstra (the battery graphs are below batchMinVertices, so the lane
	// regime never fires there).
	g := batteryGraph(t, "power-law", false, false, 13)
	res, err := Solve(g, ParAPSP, Options{Workers: 2, Kernel: KernelAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != KernelDijkstra {
		t.Errorf("unweighted small graph: auto picked %q, want %q", res.Kernel, KernelDijkstra)
	}
	// Path tracking always lands on the FIFO solver.
	g = batteryGraph(t, "grid", false, true, 13)
	res, err = Solve(g, ParAPSP, Options{Workers: 2, Kernel: KernelAuto, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != KernelDijkstra {
		t.Errorf("TrackPaths: auto picked %q, want %q", res.Kernel, KernelDijkstra)
	}

	// SolveSubset accepts auto and reports the resolved kernel; with a
	// conflicting explicit Batch: Force it must refuse.
	sub, err := SolveSubset(g, []int32{1, 2, 3}, Options{Kernel: KernelAuto})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kernel == KernelAuto || sub.Kernel == "" {
		t.Errorf("subset: Kernel = %q, want resolved name", sub.Kernel)
	}
	if _, err := SolveSubset(g, []int32{1, 2, 3}, Options{Kernel: KernelAuto, Batch: BatchForce}); !errors.Is(err, ErrInvalid) {
		t.Errorf("subset auto + Batch=force: got %v, want ErrInvalid", err)
	}
}

// FuzzAlgorithmRoundTrip pins that ParseAlgorithm inverts Algorithm.String
// for every registered preset, and that parseable strings round-trip — a
// new preset cannot silently desync the two since both scan one table.
func FuzzAlgorithmRoundTrip(f *testing.F) {
	for _, a := range Algorithms() {
		f.Add(a.String())
	}
	f.Add("not-an-algorithm")
	// Kernel names (notably "auto") are not algorithm names: they must
	// fail ParseAlgorithm rather than alias a preset.
	f.Add("auto")
	f.Fuzz(func(t *testing.T, name string) {
		a, err := ParseAlgorithm(name)
		if err != nil {
			return // unparseable input: nothing to round-trip
		}
		if !a.Valid() {
			t.Fatalf("ParseAlgorithm(%q) = %d, which is not Valid", name, int(a))
		}
		if got := a.String(); got != name {
			t.Fatalf("ParseAlgorithm(%q).String() = %q", name, got)
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip of %q: %v, %v", name, back, err)
		}
	})
}
