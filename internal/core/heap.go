package core

import (
	"fmt"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// distHeap is a minimal binary min-heap of (vertex, dist) pairs with lazy
// deletion, reused across the sources a worker processes.
type distHeap struct {
	vs []int32
	ds []matrix.Dist
}

func (h *distHeap) reset() { h.vs = h.vs[:0]; h.ds = h.ds[:0] }

func (h *distHeap) push(v int32, d matrix.Dist) {
	h.vs = append(h.vs, v)
	h.ds = append(h.ds, d)
	i := len(h.vs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ds[p] <= h.ds[i] {
			break
		}
		h.vs[p], h.vs[i] = h.vs[i], h.vs[p]
		h.ds[p], h.ds[i] = h.ds[i], h.ds[p]
		i = p
	}
}

func (h *distHeap) pop() (int32, matrix.Dist) {
	v, d := h.vs[0], h.ds[0]
	last := len(h.vs) - 1
	h.vs[0], h.ds[0] = h.vs[last], h.ds[last]
	h.vs, h.ds = h.vs[:last], h.ds[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.ds[l] < h.ds[small] {
			small = l
		}
		if r < last && h.ds[r] < h.ds[small] {
			small = r
		}
		if small == i {
			break
		}
		h.vs[small], h.vs[i] = h.vs[i], h.vs[small]
		h.ds[small], h.ds[i] = h.ds[i], h.ds[small]
		i = small
	}
	return v, d
}

// heapScratch is the per-worker state of the heap variant: the priority
// queue plus a settled bitmap with an undo list for O(settled) reset.
type heapScratch struct {
	heap    distHeap
	settled []bool
	touched []int32
}

func newHeapScratch(n int) *heapScratch {
	return &heapScratch{settled: make([]bool, n), touched: make([]int32, 0, 64)}
}

// modifiedDijkstraHeap is the priority-queue formulation of Algorithm 1:
// identical relaxations and row-combine reuse, but vertices are settled in
// distance order (classic Dijkstra with lazy deletion) instead of the
// paper's FIFO label-correcting order. Each vertex is therefore processed
// at most once — the FIFO variant may reprocess a vertex whose distance
// improved — at the price of O(log n) queue operations.
//
// The solutions are identical; the HeapQueue ablation measures which queue
// discipline wins on scale-free inputs (the paper implicitly chose FIFO).
func modifiedDijkstraHeap(g *graph.Graph, s int32, dest rowDest, f *flags, sc *heapScratch, opts Options) {
	row := dest.row(s)
	row[s] = 0
	reuse := !opts.DisableRowReuse

	sc.heap.reset()
	for _, v := range sc.touched {
		sc.settled[v] = false
	}
	sc.touched = sc.touched[:0]

	sc.heap.push(s, 0)
	for len(sc.heap.vs) > 0 {
		t, dt := sc.heap.pop()
		if sc.settled[t] || dt > row[t] {
			continue // stale entry
		}
		sc.settled[t] = true
		sc.touched = append(sc.touched, t)

		if reuse && t != s && f.done(t) {
			// The re-push of improved vertices keeps this loop scalar
			// (the fold kernels update distances only), but the
			// finite-span summary still narrows the sweep to the
			// published row's non-Inf region.
			rt := dest.row(t)
			lo, hi := 0, len(rt)
			if sum, ok := dest.summary(t); ok {
				if sum.Finite <= 1 {
					continue // only the diagonal: dt+0 cannot improve row[t]
				}
				lo, hi = int(sum.Lo), int(sum.Hi)
			}
			for v := lo; v < hi; v++ {
				dtv := rt[v]
				if dtv == matrix.Inf {
					continue
				}
				if nd := matrix.AddSat(dt, dtv); nd < row[v] {
					row[v] = nd
					// Settled-in-distance-order requires the improved
					// vertices to re-enter the queue: unlike the FIFO
					// variant, a later pop of v with a stale higher key
					// would otherwise settle it before its own fold
					// opportunities are reflected. Push keeps the
					// distance-order invariant.
					if !sc.settled[v] {
						sc.heap.push(int32(v), nd)
					}
				}
			}
			continue
		}

		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < row[v] {
				row[v] = nd
				if !sc.settled[v] {
					sc.heap.push(v, nd)
				}
			}
		}
	}
	dest.publish(f, s)
}

// heapKernel registers the heap formulation as the "heap" kernel — the
// queue-discipline ablation, also reachable through the legacy
// Options.HeapQueue flag. Path tracking and the paper-verbatim queue are
// FIFO-solver mechanisms and are rejected.
type heapKernel struct{}

func init() { RegisterKernel(heapKernel{}) }

func (heapKernel) Name() string { return KernelHeap }
func (heapKernel) Grain() int   { return 1 }

func (heapKernel) Supports(g *graph.Graph, opts Options) error {
	if opts.TrackPaths {
		return fmt.Errorf("%w: kernel %q does not track paths", ErrInvalid, KernelHeap)
	}
	if opts.PaperQueue {
		return fmt.Errorf("%w: kernel %q has no paper-queue variant", ErrInvalid, KernelHeap)
	}
	return nil
}

func (heapKernel) Bind(rt *Runtime) KernelRun {
	return &heapRun{rt: rt, scratches: make([]*heapScratch, rt.Workers)}
}

type heapRun struct {
	rt        *Runtime
	scratches []*heapScratch
}

func (r *heapRun) Run(w, lo, hi int) {
	rt := r.rt
	sc := r.scratches[w]
	if sc == nil {
		sc = newHeapScratch(rt.G.N())
		r.scratches[w] = sc
	}
	for i := lo; i < hi; i++ {
		modifiedDijkstraHeap(rt.G, rt.Sources[i], rt.Dest, rt.Flags, sc, rt.Opts)
	}
}

// Finish returns zero counters: the heap variant has always left the work
// counters unpopulated (Result.Stats documents this), and the ablation
// compares wall time, not counter streams.
func (r *heapRun) Finish() Counters { return Counters{} }
