package core

import (
	"fmt"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// NextHop is the successor matrix of an APSP solution: At(s, v) is the
// first vertex after s on some shortest path from s to v, or -1 when
// v == s or v is unreachable from s. Together with the distance matrix it
// reconstructs any shortest path in O(path length).
//
// The paper computes distances only; path tracking is the natural library
// extension and costs one extra int32 per pair (doubling memory), which is
// why it is opt-in (Options.TrackPaths).
type NextHop struct {
	n    int
	data []int32
}

func newNextHop(n int) *NextHop {
	nh := &NextHop{n: n, data: make([]int32, n*n)}
	for i := range nh.data {
		nh.data[i] = -1
	}
	return nh
}

// N returns the matrix dimension.
func (nh *NextHop) N() int { return nh.n }

// At returns the first hop from s toward v (-1 if none).
func (nh *NextHop) At(s, v int) int32 { return nh.data[s*nh.n+v] }

func (nh *NextHop) row(s int32) []int32 {
	return nh.data[int(s)*nh.n : (int(s)+1)*nh.n : (int(s)+1)*nh.n]
}

// Path reconstructs the vertex sequence of a shortest path from s to v,
// inclusive of both endpoints. It returns nil if v is unreachable from s,
// and [s] if s == v. The walk is validated against n steps so a corrupted
// matrix cannot loop forever.
func (nh *NextHop) Path(s, v int32) []int32 {
	if s == v {
		return []int32{s}
	}
	if nh.At(int(s), int(v)) < 0 {
		return nil
	}
	path := make([]int32, 0, 8)
	path = append(path, s)
	u := s
	for steps := 0; u != v; steps++ {
		if steps > nh.n {
			panic("core: next-hop matrix contains a cycle")
		}
		u = nh.At(int(u), int(v))
		if u < 0 {
			panic("core: next-hop matrix truncated mid-path")
		}
		path = append(path, u)
	}
	return path
}

// Verify checks a reconstructed path against the graph and distance
// matrix: consecutive vertices must be adjacent and edge weights must sum
// to the claimed distance. Tests and examples use it; it returns nil when
// the path is a genuine shortest path.
func (nh *NextHop) Verify(g *graph.Graph, D *matrix.Matrix, s, v int32) error {
	path := nh.Path(s, v)
	want := D.At(int(s), int(v))
	if path == nil {
		if want != matrix.Inf {
			return fmt.Errorf("core: no path %d->%d but distance %d", s, v, want)
		}
		return nil
	}
	var sum matrix.Dist
	for i := 1; i < len(path); i++ {
		u, x := path[i-1], path[i]
		adj, wts := g.NeighborsW(u)
		best := matrix.Inf
		for j, t := range adj {
			if t == x {
				w := matrix.Dist(1)
				if wts != nil {
					w = wts[j]
				}
				if w < best {
					best = w
				}
			}
		}
		if best == matrix.Inf {
			return fmt.Errorf("core: path step %d->%d is not an edge", u, x)
		}
		sum = matrix.AddSat(sum, best)
	}
	if sum != want {
		return fmt.Errorf("core: path %d->%d sums to %d, distance matrix says %d", s, v, sum, want)
	}
	return nil
}

// modifiedDijkstraPaths is modifiedDijkstra with next-hop tracking. It is
// a separate function (rather than a branch in the hot loop) so the
// distance-only solver keeps its tight inner loop; the tests assert both
// produce identical distances.
//
// Invariant maintained: whenever row[v] holds a (tentative) distance d,
// next[v] holds the first hop of an s->v path of length d. On the edge
// relaxation D[s,v] <- D[s,t]+L(t,v) the first hop toward v is the first
// hop toward t (or v itself when t == s); on the row combine
// D[s,v] <- D[s,t]+D[t,v] it is likewise the first hop toward t, which the
// triangle inequality shows lies on a shortest s->v path once all rows
// converge.
func modifiedDijkstraPaths(g *graph.Graph, s int32, dest rowDest, nh *NextHop, f *flags, sc *scratch, opts Options) {
	row := dest.row(s)
	next := nh.row(s)
	row[s] = 0

	dedup := !opts.PaperQueue
	reuse := !opts.DisableRowReuse

	q := sc.queue[:0]
	q = append(q, s)
	if dedup {
		sc.inQueue[s] = true
	}
	head := 0
	for head < len(q) {
		t := q[head]
		head++
		if head > queueCompactMin && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		if dedup {
			sc.inQueue[t] = false
		}
		dt := row[t]

		if reuse && t != s && f.done(t) {
			// The per-entry next-hop write keeps this loop scalar (the
			// fold kernels update distances only), but the finite-span
			// summary still narrows the sweep to the published row's
			// non-Inf region.
			rt := dest.row(t)
			lo, hi := 0, len(rt)
			if sum, ok := dest.summary(t); ok {
				if sum.Finite <= 1 {
					continue // only the diagonal: dt+0 cannot improve row[t]
				}
				lo, hi = int(sum.Lo), int(sum.Hi)
			}
			hopToT := next[t]
			for v := lo; v < hi; v++ {
				dtv := rt[v]
				if dtv == matrix.Inf {
					continue
				}
				if nd := matrix.AddSat(dt, dtv); nd < row[v] {
					row[v] = nd
					next[v] = hopToT
				}
			}
			continue
		}

		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < row[v] {
				row[v] = nd
				if t == s {
					next[v] = v
				} else {
					next[v] = next[t]
				}
				if !dedup {
					q = append(q, v)
				} else if !sc.inQueue[v] {
					sc.inQueue[v] = true
					q = append(q, v)
				}
			}
		}
	}
	sc.queue = q[:0]
	dest.publish(f, s)
}
