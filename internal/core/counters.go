package core

import "parapsp/internal/obs"

// Counters aggregates the work a solve performed, independent of
// wall-clock noise. They are the mechanism-level evidence behind the
// paper's performance claims: the optimized ordering wins because
// high-degree rows complete early and get *folded* into later searches,
// replacing whole subtree expansions (EdgeScans) with single row sweeps.
// The workstats experiment prints them side by side per configuration.
//
// Counters are collected by the default FIFO distance-only solver (the
// configuration of every paper experiment); the paths/heap variants leave
// them zero.
type Counters struct {
	// Pops is the number of queue extractions across all sources,
	// including fold-queue drains.
	Pops int64
	// Folds is the number of completed-row combines (Algorithm 1's
	// lines 6-11 taken); FoldUpdates counts the entries they improved.
	Folds       int64
	FoldUpdates int64
	// FoldBatches is the number of back-to-back fold drains: the batched
	// solver defers completed rows discovered during one relaxation and
	// sweeps them consecutively while the destination row is cache-hot,
	// so Folds/FoldBatches is the mean rows folded per drain.
	FoldBatches int64
	// FoldsSkipped counts completed rows that were not swept at all
	// because their summary showed no finite entry besides the diagonal
	// (the fold is then a provable no-op). FoldEntriesSkipped counts the
	// Inf entries the sparse-aware kernels avoided touching in the rows
	// that were swept, via the finite span or explicit index list.
	FoldsSkipped       int64
	FoldEntriesSkipped int64
	// EdgeScans is the number of arcs examined in the relaxation loop;
	// EdgeUpdates counts the relaxations that improved a distance.
	EdgeScans   int64
	EdgeUpdates int64
	// Enqueues is the number of queue insertions (excluding sources),
	// counting both the vertex FIFO and the pending-fold queue.
	Enqueues int64
	// Batches is the number of multi-source batches the batch engine ran;
	// BatchSources the sources packed into them (so BatchSources/Batches
	// is the mean lane occupancy), BatchSweeps the level-synchronous
	// sweeps summed over batches, and BatchScattered the distance entries
	// written out of lane form (frontier discoveries for MS-BFS, row
	// transposes for the weighted sweep). All zero on the scalar engine.
	Batches        int64
	BatchSources   int64
	BatchSweeps    int64
	BatchScattered int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Pops += o.Pops
	c.Folds += o.Folds
	c.FoldUpdates += o.FoldUpdates
	c.FoldBatches += o.FoldBatches
	c.FoldsSkipped += o.FoldsSkipped
	c.FoldEntriesSkipped += o.FoldEntriesSkipped
	c.EdgeScans += o.EdgeScans
	c.EdgeUpdates += o.EdgeUpdates
	c.Enqueues += o.Enqueues
	c.Batches += o.Batches
	c.BatchSources += o.BatchSources
	c.BatchSweeps += o.BatchSweeps
	c.BatchScattered += o.BatchScattered
}

// PublishMetrics copies the solve's work counters and phase timings into
// an obs metrics registry under "core.*" names — the point where the
// ad-hoc Counters struct is absorbed into the observability layer (the
// scheduler's "sched.*" names land in the same registry). Counters add
// (so multiple solves against one recorder accumulate); the phase
// timings are per-solve gauges.
func (r *Result) PublishMetrics(m *obs.Metrics) {
	c := r.Stats
	m.Counter("core.pops").Add(c.Pops)
	m.Counter("core.folds").Add(c.Folds)
	m.Counter("core.fold_updates").Add(c.FoldUpdates)
	m.Counter("core.fold_batches").Add(c.FoldBatches)
	m.Counter("core.folds_skipped").Add(c.FoldsSkipped)
	m.Counter("core.fold_entries_skipped").Add(c.FoldEntriesSkipped)
	m.Counter("core.edge_scans").Add(c.EdgeScans)
	m.Counter("core.edge_updates").Add(c.EdgeUpdates)
	m.Counter("core.enqueues").Add(c.Enqueues)
	m.Counter("core.batch.batches").Add(c.Batches)
	m.Counter("core.batch.sources").Add(c.BatchSources)
	m.Counter("core.batch.sweeps").Add(c.BatchSweeps)
	m.Counter("core.batch.scattered").Add(c.BatchScattered)
	if r.D != nil {
		m.Counter("core.sources").Add(int64(r.D.N()))
	}
	m.Counter("core.ordering_ns").Set(int64(r.OrderingTime))
	m.Counter("core.sssp_ns").Set(int64(r.SSSPTime))
}

// FoldRate returns the fraction of pops that hit a completed row — the
// reuse rate the degree-descending order exists to maximize.
func (c *Counters) FoldRate() float64 {
	if c.Pops == 0 {
		return 0
	}
	return float64(c.Folds) / float64(c.Pops)
}
