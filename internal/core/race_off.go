//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation pins skip under it (instrumentation allocates).
const raceEnabled = false
