package core

import (
	"sync/atomic"

	"parapsp/internal/graph"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
	"parapsp/internal/obs"
)

// flags is the shared completion vector of Algorithm 1 ("vector flag").
// flags.done(t) == true means the full SSSP row of t is final and will
// never be written again, so any other search may fold it in.
//
// Publication protocol: the owner of source t writes its whole row (and
// its finite-entry summary, see matrix.SummarizeRow), then calls set(t) —
// an atomic store. A reader that observes done(t) == true via the atomic
// load is therefore guaranteed (Go memory model: the store is a release,
// the load an acquire) to see every row entry and the summary. This is
// what makes the parallel algorithms produce the exact sequential
// solution without locking the matrix.
type flags struct {
	v []atomic.Uint32
}

func newFlags(n int) *flags { return &flags{v: make([]atomic.Uint32, n)} }

func (f *flags) done(t int32) bool { return f.v[t].Load() != 0 }
func (f *flags) set(t int32)       { f.v[t].Store(1) }

// queueCompactMin is the minimum consumed-prefix length before the FIFO
// queue is compacted in place. Compaction reclaims the dead prefix so the
// backing array grows with the high-water mark of *pending* vertices, not
// with total enqueues; the threshold keeps the copy amortized (a prefix
// is only reclaimed once it is at least as long as the live suffix, and
// never for trivially small queues).
const queueCompactMin = 1024

// scratch is the per-worker reusable state of one modified-Dijkstra run:
// the FIFO vertex queue, the pending-fold queue, the queue-membership
// bitmap (shared by both queues in dedup mode), and the improved-vertex
// buffer the relaxation kernels append into. Reusing it across the
// worker's sources removes per-source allocation, which would otherwise
// dominate small-graph runs.
type scratch struct {
	queue    []int32
	folds    []int32
	improved []int32
	inQueue  []bool
	stats    Counters
	// obsRec/obsLane are non-nil only for instrumented solves; the lane
	// is this worker's single-writer event buffer. The disabled hot path
	// pays one nil-check per fold drain, not per pop.
	obsRec  *obs.Recorder
	obsLane *obs.Lane
}

func newScratch(n int) *scratch {
	return &scratch{queue: make([]int32, 0, 64), inQueue: make([]bool, n)}
}

// attachObs points the scratch at the solve's recorder and this worker's
// lane, enabling fold-drain span recording.
func (sc *scratch) attachObs(r *obs.Recorder, l *obs.Lane) { sc.obsRec, sc.obsLane = r, l }

// foldRow folds the completed row t (published in dest) into row at offset
// dt — D[s,v] <- min(D[s,v], dt + D[t,v]) — dispatching on t's
// finite-entry summary: a row whose only finite entry is the diagonal is
// skipped outright (dt + 0 == dt == row[t] already), a sparse row is
// gathered through its finite-index list, and a dense row is swept over
// its finite span only. Destinations without summaries (subset row blocks)
// fall back to a full-width sweep.
func foldRow(dest rowDest, row []matrix.Dist, t int32, dt matrix.Dist, st *Counters) {
	rt := dest.row(t)
	sum, ok := dest.summary(t)
	if !ok {
		st.FoldUpdates += kernel.FoldRow(row, rt, dt)
		return
	}
	if sum.Finite <= 1 {
		st.FoldsSkipped++
		st.FoldEntriesSkipped += int64(len(rt))
		return
	}
	if idx := dest.finiteIndex(t); idx != nil {
		st.FoldEntriesSkipped += int64(len(rt) - len(idx))
		st.FoldUpdates += kernel.FoldRowIndexed(row, rt, dt, idx)
		return
	}
	lo, hi := int(sum.Lo), int(sum.Hi)
	st.FoldEntriesSkipped += int64(len(rt) - (hi - lo))
	if sum.Finite == sum.Hi-sum.Lo && dt <= matrix.Inf-sum.Max {
		// Fully finite span and no sum can reach Inf: the pure
		// add/compare sweep needs neither the Inf check nor the clamp.
		st.FoldUpdates += kernel.FoldRowNoSat(row[lo:hi], rt[lo:hi], dt)
		return
	}
	st.FoldUpdates += kernel.FoldRow(row[lo:hi], rt[lo:hi], dt)
}

// modifiedDijkstra is Algorithm 1: a label-correcting single-source search
// from s into row D[s], reusing any completed row it encounters.
//
// The procedure maintains a FIFO queue of vertices whose tentative distance
// improved. When a vertex t already has a final row (flag[t] set), the
// whole row is folded in — D[s,v] <- min(D[s,v], D[s,t]+D[t,v]) — and t's
// edges are NOT expanded: row t already dominates every continuation
// through t, including continuations of the vertices the fold just
// improved, so fold improvements need no re-enqueue. Otherwise t's
// outgoing edges are relaxed and improved endpoints are enqueued
// (lines 13-18). The search terminates because weights are positive and
// each enqueue requires a strict distance decrease.
//
// Unlike the pseudocode, completed rows are not folded at pop time:
// improved vertices whose row is already final are routed to a separate
// pending-fold queue, and all pending folds are drained back-to-back
// before edge relaxation resumes. The destination row stays cache-hot
// across the consecutive sweeps, and the relaxation loop never alternates
// with row-sized streaming reads. The label-correcting fixpoint is
// order-independent, so deferring folds changes no distances: a deferred
// fold still runs with t's latest tentative distance, and any vertex
// improved after being queued is simply processed with its newer value.
//
// A vertex already in either queue is not enqueued twice — the classic
// SPFA refinement, which changes no distances because a queued vertex is
// processed with its latest tentative distance anyway. With
// opts.PaperQueue the duplicate enqueues and fold-at-pop of the
// pseudocode are kept verbatim (see paperDijkstra).
func modifiedDijkstra(g *graph.Graph, s int32, dest rowDest, f *flags, sc *scratch, opts Options) {
	if opts.PaperQueue {
		paperDijkstra(g, s, dest, f, sc, opts)
		return
	}
	row := dest.row(s)
	row[s] = 0 // line 2 (idempotent after InitAPSP)
	reuse := !opts.DisableRowReuse

	q := sc.queue[:0]
	q = append(q, s)
	sc.inQueue[s] = true
	folds := sc.folds[:0]
	head := 0
	st := &sc.stats
	for head < len(q) || len(folds) > 0 {
		// Drain every pending completed row back-to-back into the (hot)
		// destination row. Fold improvements never enqueue (see above),
		// so the batch cannot grow while it drains.
		if len(folds) > 0 {
			st.FoldBatches++
			var t0 int64
			if sc.obsLane != nil {
				t0 = sc.obsRec.Now()
			}
			batch := len(folds)
			for _, t := range folds {
				sc.inQueue[t] = false
				st.Pops++
				st.Folds++
				foldRow(dest, row, t, row[t], st)
			}
			folds = folds[:0]
			if sc.obsLane != nil {
				sc.obsLane.Add(obs.Event{Phase: obs.PhaseFoldDrain,
					Start: t0, End: sc.obsRec.Now(), Index: int64(s), Arg: int64(batch)})
			}
			continue
		}

		t := q[head]
		head++
		// Reclaim consumed prefix occasionally so the backing array does
		// not grow with total enqueues.
		if head > queueCompactMin && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		if reuse && t != s && f.done(t) {
			// t's row became final after t was queued: reroute it to the
			// fold queue (inQueue stays set until the drain).
			folds = append(folds, t)
			continue
		}
		sc.inQueue[t] = false
		st.Pops++
		dt := row[t]

		// Lines 13-18: relax t's outgoing edges.
		adj, w := g.NeighborsW(t)
		st.EdgeScans += int64(len(adj))
		imp := sc.improved[:0]
		if w == nil {
			// Unweighted fast path: every edge weighs 1.
			imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
		} else {
			imp = kernel.RelaxWeighted(row, adj, w, dt, imp)
		}
		st.EdgeUpdates += int64(len(imp))
		for _, v := range imp {
			if sc.inQueue[v] {
				continue
			}
			sc.inQueue[v] = true
			st.Enqueues++
			if reuse && f.done(v) {
				folds = append(folds, v)
			} else {
				q = append(q, v)
			}
		}
		sc.improved = imp[:0]
	}
	sc.queue = q[:0]
	sc.folds = folds[:0]
	dest.publish(f, s) // line 21: publish the completed row (and its summary)
}

// paperDijkstra is the pseudocode-verbatim queue discipline, kept for the
// ablation-queue experiment: no membership dedup (a vertex is enqueued
// once per improvement) and completed rows are folded at pop time rather
// than batched. The inner loops still run through the kernels — they are
// observationally identical to the scalar element loops, so the ablation
// isolates the queue discipline alone.
func paperDijkstra(g *graph.Graph, s int32, dest rowDest, f *flags, sc *scratch, opts Options) {
	row := dest.row(s)
	row[s] = 0
	reuse := !opts.DisableRowReuse

	q := sc.queue[:0]
	q = append(q, s)
	head := 0
	st := &sc.stats
	for head < len(q) {
		t := q[head]
		head++
		st.Pops++
		if head > queueCompactMin && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		dt := row[t]

		if reuse && t != s && f.done(t) {
			// Lines 6-11: fold in the completed row of t.
			st.Folds++
			foldRow(dest, row, t, dt, st)
			continue
		}

		adj, w := g.NeighborsW(t)
		st.EdgeScans += int64(len(adj))
		imp := sc.improved[:0]
		if w == nil {
			imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
		} else {
			imp = kernel.RelaxWeighted(row, adj, w, dt, imp)
		}
		st.EdgeUpdates += int64(len(imp))
		for _, v := range imp {
			q = append(q, v)
			st.Enqueues++
		}
		sc.improved = imp[:0]
	}
	sc.queue = q[:0]
	dest.publish(f, s)
}

// runAdaptive implements Peng et al.'s adaptive optimization as described
// in Section 2.2 of the paper: the source order is adapted between
// iterations, giving priority to vertices that were "actually in the
// middle of shortest paths of two other vertices".
//
// Peng et al.'s exact bookkeeping is not reproduced in the ICPP paper, so
// this implementation uses the natural reading (documented in DESIGN.md):
// it counts, per vertex, how many times its completed row was folded into
// another search (a direct measure of being a useful intermediate), and at
// each iteration selects the unprocessed vertex with the highest
// (reuseCount, degree) pair. The selection scan is O(n) per iteration —
// the loop-carried dependence that made the paper decline to parallelize
// this variant.
func runAdaptive(g *graph.Graph, D *matrix.Matrix, opts Options) []int32 {
	n := g.N()
	dest := rowDest{m: D}
	f := newFlags(n)
	sc := newScratch(n)
	degrees := g.Degrees()
	reused := make([]int64, n)
	processed := make([]bool, n)
	orderOut := make([]int32, 0, n)

	for iter := 0; iter < n; iter++ {
		best := int32(-1)
		for v := 0; v < n; v++ {
			if processed[v] {
				continue
			}
			if best < 0 {
				best = int32(v)
				continue
			}
			if reused[v] > reused[best] ||
				(reused[v] == reused[best] && degrees[v] > degrees[best]) {
				best = int32(v)
			}
		}
		processed[best] = true
		orderOut = append(orderOut, best)
		adaptiveDijkstra(g, best, dest, f, sc, reused, opts)
	}
	return orderOut
}

// adaptiveDijkstra is modifiedDijkstra with reuse accounting: each fold of
// a completed row t increments reused[t]. It shares the fold kernel
// dispatch and queue compaction of the main solver but not the fold
// batching — the adaptive variant is sequential by construction, so there
// is no published-mid-relaxation row to defer.
func adaptiveDijkstra(g *graph.Graph, s int32, dest rowDest, f *flags, sc *scratch, reused []int64, opts Options) {
	row := dest.row(s)
	row[s] = 0
	q := sc.queue[:0]
	q = append(q, s)
	sc.inQueue[s] = true
	head := 0
	st := &sc.stats
	for head < len(q) {
		t := q[head]
		head++
		if head > queueCompactMin && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		sc.inQueue[t] = false
		dt := row[t]
		if !opts.DisableRowReuse && t != s && f.done(t) {
			reused[t]++
			foldRow(dest, row, t, dt, st)
			continue
		}
		adj, w := g.NeighborsW(t)
		imp := sc.improved[:0]
		if w == nil {
			imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
		} else {
			imp = kernel.RelaxWeighted(row, adj, w, dt, imp)
		}
		for _, v := range imp {
			if !sc.inQueue[v] {
				sc.inQueue[v] = true
				q = append(q, v)
			}
		}
		sc.improved = imp[:0]
	}
	sc.queue = q[:0]
	dest.publish(f, s)
}

// dijkstraKernel registers the paper's modified Dijkstra (Algorithm 1) as
// the default source kernel. It is the only kernel supporting every option
// combination: TrackPaths routes to the next-hop variant, PaperQueue to
// the pseudocode-verbatim queue discipline, DisableRowReuse simply skips
// the folds.
type dijkstraKernel struct{}

func init() { RegisterKernel(dijkstraKernel{}) }

func (dijkstraKernel) Name() string                                { return KernelDijkstra }
func (dijkstraKernel) Supports(g *graph.Graph, opts Options) error { return nil }
func (dijkstraKernel) Grain() int                                  { return 1 }

func (dijkstraKernel) Bind(rt *Runtime) KernelRun {
	return &dijkstraRun{rt: rt, scratches: make([]*scratch, rt.Workers)}
}

type dijkstraRun struct {
	rt        *Runtime
	scratches []*scratch
}

func (r *dijkstraRun) Run(w, lo, hi int) {
	rt := r.rt
	sc := r.scratches[w]
	if sc == nil {
		sc = getScratch(rt.G.N())
		r.scratches[w] = sc
		if rt.Rec != nil {
			if rt.Seq {
				// Sequential presets execute on the coordinator goroutine,
				// so fold-drain events go to the coordinator lane.
				sc.attachObs(rt.Rec, rt.Rec.Coordinator())
			} else {
				sc.attachObs(rt.Rec, rt.Rec.Lane(w))
			}
		}
	}
	for i := lo; i < hi; i++ {
		s := rt.Sources[i]
		if rt.Next != nil {
			modifiedDijkstraPaths(rt.G, s, rt.Dest, rt.Next, rt.Flags, sc, rt.Opts)
		} else {
			modifiedDijkstra(rt.G, s, rt.Dest, rt.Flags, sc, rt.Opts)
		}
	}
}

func (r *dijkstraRun) Finish() Counters {
	var total Counters
	for _, sc := range r.scratches {
		if sc != nil {
			total.Add(sc.stats)
			putScratch(sc)
		}
	}
	return total
}
