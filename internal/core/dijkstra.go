package core

import (
	"sync/atomic"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// flags is the shared completion vector of Algorithm 1 ("vector flag").
// flags.done(t) == true means the full SSSP row of t is final and will
// never be written again, so any other search may fold it in.
//
// Publication protocol: the owner of source t writes its whole row, then
// calls set(t) — an atomic store. A reader that observes done(t) == true
// via the atomic load is therefore guaranteed (Go memory model: the store
// is a release, the load an acquire) to see every row entry. This is what
// makes the parallel algorithms produce the exact sequential solution
// without locking the matrix.
type flags struct {
	v []atomic.Uint32
}

func newFlags(n int) *flags { return &flags{v: make([]atomic.Uint32, n)} }

func (f *flags) done(t int32) bool { return f.v[t].Load() != 0 }
func (f *flags) set(t int32)       { f.v[t].Store(1) }

// scratch is the per-worker reusable state of one modified-Dijkstra run:
// the FIFO vertex queue and (in dedup mode) the queue-membership bitmap.
// Reusing it across the worker's sources removes per-source allocation,
// which would otherwise dominate small-graph runs.
type scratch struct {
	queue   []int32
	inQueue []bool
	stats   Counters
}

func newScratch(n int) *scratch {
	return &scratch{queue: make([]int32, 0, 64), inQueue: make([]bool, n)}
}

// modifiedDijkstra is Algorithm 1: a label-correcting single-source search
// from s into row D[s], reusing any completed row it encounters.
//
// The procedure maintains a FIFO queue of vertices whose tentative distance
// improved. When a dequeued vertex t already has a final row (flag[t] set),
// the whole row is folded in — D[s,v] <- min(D[s,v], D[s,t]+D[t,v]) — and
// t's edges are NOT expanded: row t already dominates every continuation
// through t, including continuations of the vertices the fold just
// improved, so fold improvements need no re-enqueue. Otherwise t's
// outgoing edges are relaxed and improved endpoints are enqueued
// (lines 13-18). The search terminates because weights are positive and
// each enqueue requires a strict distance decrease.
//
// In dedup mode (the default) a vertex already in the queue is not
// enqueued twice — the classic SPFA refinement, which changes no distances
// because a queued vertex is processed with its latest tentative distance
// anyway. With opts.PaperQueue the duplicate enqueues of the pseudocode
// are kept verbatim.
func modifiedDijkstra(g *graph.Graph, s int32, D *matrix.Matrix, f *flags, sc *scratch, opts Options) {
	row := D.Row(int(s))
	row[s] = 0 // line 2 (idempotent after InitAPSP)

	dedup := !opts.PaperQueue
	reuse := !opts.DisableRowReuse

	q := sc.queue[:0]
	q = append(q, s)
	if dedup {
		sc.inQueue[s] = true
	}
	head := 0
	st := &sc.stats
	for head < len(q) {
		t := q[head]
		head++
		st.Pops++
		// Reclaim consumed prefix occasionally so the backing array does
		// not grow with total enqueues.
		if head > 1024 && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		if dedup {
			sc.inQueue[t] = false
		}
		dt := row[t]

		if reuse && t != s && f.done(t) {
			// Lines 6-11: fold in the completed row of t.
			st.Folds++
			rt := D.Row(int(t))
			for v, dtv := range rt {
				if dtv == matrix.Inf {
					continue
				}
				if nd := matrix.AddSat(dt, dtv); nd < row[v] {
					row[v] = nd
					st.FoldUpdates++
				}
			}
			continue
		}

		// Lines 13-18: relax t's outgoing edges.
		adj, w := g.NeighborsW(t)
		st.EdgeScans += int64(len(adj))
		if w == nil {
			// Unweighted fast path: every edge weighs 1.
			nd := matrix.AddSat(dt, 1)
			for _, v := range adj {
				if nd < row[v] {
					row[v] = nd
					st.EdgeUpdates++
					if !dedup {
						q = append(q, v)
						st.Enqueues++
					} else if !sc.inQueue[v] {
						sc.inQueue[v] = true
						q = append(q, v)
						st.Enqueues++
					}
				}
			}
		} else {
			for i, v := range adj {
				if nd := matrix.AddSat(dt, w[i]); nd < row[v] {
					row[v] = nd
					st.EdgeUpdates++
					if !dedup {
						q = append(q, v)
						st.Enqueues++
					} else if !sc.inQueue[v] {
						sc.inQueue[v] = true
						q = append(q, v)
						st.Enqueues++
					}
				}
			}
		}
	}
	sc.queue = q[:0]
	f.set(s) // line 21: publish the completed row
}

// runAdaptive implements Peng et al.'s adaptive optimization as described
// in Section 2.2 of the paper: the source order is adapted between
// iterations, giving priority to vertices that were "actually in the
// middle of shortest paths of two other vertices".
//
// Peng et al.'s exact bookkeeping is not reproduced in the ICPP paper, so
// this implementation uses the natural reading (documented in DESIGN.md):
// it counts, per vertex, how many times its completed row was folded into
// another search (a direct measure of being a useful intermediate), and at
// each iteration selects the unprocessed vertex with the highest
// (reuseCount, degree) pair. The selection scan is O(n) per iteration —
// the loop-carried dependence that made the paper decline to parallelize
// this variant.
func runAdaptive(g *graph.Graph, D *matrix.Matrix, opts Options) []int32 {
	n := g.N()
	f := newFlags(n)
	sc := newScratch(n)
	degrees := g.Degrees()
	reused := make([]int64, n)
	processed := make([]bool, n)
	orderOut := make([]int32, 0, n)

	for iter := 0; iter < n; iter++ {
		best := int32(-1)
		for v := 0; v < n; v++ {
			if processed[v] {
				continue
			}
			if best < 0 {
				best = int32(v)
				continue
			}
			if reused[v] > reused[best] ||
				(reused[v] == reused[best] && degrees[v] > degrees[best]) {
				best = int32(v)
			}
		}
		processed[best] = true
		orderOut = append(orderOut, best)
		adaptiveDijkstra(g, best, D, f, sc, reused, opts)
	}
	return orderOut
}

// adaptiveDijkstra is modifiedDijkstra with reuse accounting: each fold of
// a completed row t increments reused[t].
func adaptiveDijkstra(g *graph.Graph, s int32, D *matrix.Matrix, f *flags, sc *scratch, reused []int64, opts Options) {
	row := D.Row(int(s))
	row[s] = 0
	q := sc.queue[:0]
	q = append(q, s)
	sc.inQueue[s] = true
	head := 0
	for head < len(q) {
		t := q[head]
		head++
		sc.inQueue[t] = false
		dt := row[t]
		if !opts.DisableRowReuse && t != s && f.done(t) {
			reused[t]++
			rt := D.Row(int(t))
			for v, dtv := range rt {
				if dtv == matrix.Inf {
					continue
				}
				if nd := matrix.AddSat(dt, dtv); nd < row[v] {
					row[v] = nd
				}
			}
			continue
		}
		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < row[v] {
				row[v] = nd
				if !sc.inQueue[v] {
					sc.inQueue[v] = true
					q = append(q, v)
				}
			}
		}
	}
	sc.queue = q[:0]
	f.set(s)
}
