package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

func TestTrackPathsDistancesUnchanged(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		plain, err := Solve(g, ParAPSP, Options{Workers: 3})
		if err != nil {
			return false
		}
		tracked, err := Solve(g, ParAPSP, Options{Workers: 3, TrackPaths: true})
		if err != nil {
			return false
		}
		if tracked.Next == nil {
			return false
		}
		return tracked.D.Equal(plain.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsVerifyOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		res, err := Solve(g, ParAPSP, Options{Workers: 3, TrackPaths: true})
		if err != nil {
			return false
		}
		n := int32(g.N())
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			s, v := rng.Int31n(n), rng.Int31n(n)
			if err := res.Next.Verify(g, res.D, s, v); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsAllPairsSmall(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 5, gen.Weighting{Min: 1, Max: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{SeqBasic, SeqOptimized, ParAlg1, ParAlg2, ParAPSP} {
		res, err := Solve(g, alg, Options{Workers: 3, TrackPaths: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for s := int32(0); s < 80; s++ {
			for v := int32(0); v < 80; v++ {
				if err := res.Next.Verify(g, res.D, s, v); err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
			}
		}
	}
}

func TestPathEndpoints(t *testing.T) {
	g, err := graph.FromPairs(4, false, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, SeqBasic, Options{TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Next.Path(0, 3)
	want := []int32{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if got := res.Next.Path(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("self path = %v", got)
	}
	if got := res.Next.Path(3, 0); got != nil {
		t.Errorf("unreachable path = %v", got)
	}
}

func TestPathPicksShortestOfAlternatives(t *testing.T) {
	// 0->3 direct weight 10 vs 0->1->2->3 weight 3.
	g, err := graph.FromEdges(4, false, []graph.Edge{
		{From: 0, To: 3, W: 10},
		{From: 0, To: 1, W: 1},
		{From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, ParAPSP, Options{Workers: 2, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.D.At(0, 3) != 3 {
		t.Fatalf("distance = %d", res.D.At(0, 3))
	}
	p := res.Next.Path(0, 3)
	if len(p) != 4 {
		t.Fatalf("path = %v, want the 4-vertex route", p)
	}
}

// TestPathsDisconnected covers path reconstruction across components: no
// path may be fabricated between islands, every intra-island pair must
// reconstruct and verify, and At stays -1 for cross-island pairs.
func TestPathsDisconnected(t *testing.T) {
	g := batteryGraph(t, "disconnected", false, true, 19)
	res, err := Solve(g, ParAPSP, Options{Workers: 3, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.N())
	island := func(v int32) int32 { return v / 100 } // batteryGraph: 3 islands of 100
	var cross, within int
	for s := int32(0); s < n; s += 7 {
		for v := int32(0); v < n; v += 3 {
			if err := res.Next.Verify(g, res.D, s, v); err != nil {
				t.Fatalf("verify %d->%d: %v", s, v, err)
			}
			if island(s) != island(v) {
				cross++
				if res.D.At(int(s), int(v)) != matrix.Inf {
					t.Fatalf("cross-island distance %d->%d = %d", s, v, res.D.At(int(s), int(v)))
				}
				if p := res.Next.Path(s, v); p != nil {
					t.Fatalf("cross-island path %d->%d = %v", s, v, p)
				}
				if hop := res.Next.At(int(s), int(v)); hop != -1 {
					t.Fatalf("cross-island next hop %d->%d = %d", s, v, hop)
				}
			} else if s != v && res.D.At(int(s), int(v)) != matrix.Inf {
				within++
				if p := res.Next.Path(s, v); len(p) < 2 || p[0] != s || p[len(p)-1] != v {
					t.Fatalf("path %d->%d = %v", s, v, p)
				}
			}
		}
	}
	if cross == 0 || within == 0 {
		t.Fatalf("degenerate sampling: cross=%d within=%d", cross, within)
	}
}

// TestPathsSelfLoops pins that self loops (kept explicitly via the
// builder) never enter a reconstructed path: a positive-weight loop can't
// lie on any shortest path, the diagonal stays 0, and s->s reconstructs to
// the single-vertex path.
func TestPathsSelfLoops(t *testing.T) {
	b := graph.NewBuilder(5, false).KeepSelfLoops()
	edges := []graph.Edge{
		{From: 0, To: 0, W: 2}, // self loop on a through-vertex
		{From: 0, To: 1, W: 1},
		{From: 1, To: 1, W: 5},
		{From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 4},
		{From: 3, To: 3, W: 1},
		// vertex 4 only has its loop: unreachable from the rest.
		{From: 4, To: 4, W: 3},
	}
	for _, e := range edges {
		if err := b.AddWeighted(e.From, e.To, e.W); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, ParAPSP, Options{Workers: 2, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < 5; s++ {
		if d := res.D.At(int(s), int(s)); d != 0 {
			t.Errorf("D[%d][%d] = %d, want 0 despite the self loop", s, s, d)
		}
		if p := res.Next.Path(s, s); len(p) != 1 || p[0] != s {
			t.Errorf("self path of %d = %v", s, p)
		}
		for v := int32(0); v < 5; v++ {
			if err := res.Next.Verify(g, res.D, s, v); err != nil {
				t.Errorf("verify %d->%d: %v", s, v, err)
			}
			for _, u := range res.Next.Path(s, v) {
				_ = u // Path panics on loops; reaching here means no cycle
			}
		}
	}
	if got := res.D.At(0, 3); got != 6 {
		t.Errorf("D[0][3] = %d, want 6 (loops must not shorten paths)", got)
	}
	if res.Next.Path(0, 4) != nil {
		t.Error("loop-only vertex 4 reachable")
	}
}

func TestTrackPathsRejectedForAdaptive(t *testing.T) {
	g, _ := graph.FromPairs(2, true, [][2]int32{{0, 1}})
	if _, err := Solve(g, SeqAdaptive, Options{TrackPaths: true}); !errors.Is(err, ErrInvalid) {
		t.Errorf("SeqAdaptive+TrackPaths error = %v", err)
	}
}

func TestTrackPathsDoublesMemoryBound(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 6, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	// 100x100x4 = 40 kB for distances; the bound below admits distances
	// alone but not distances + next hops.
	bound := uint64(60000)
	if _, err := Solve(g, ParAPSP, Options{MaxMemBytes: bound}); err != nil {
		t.Fatalf("plain solve rejected: %v", err)
	}
	if _, err := Solve(g, ParAPSP, Options{MaxMemBytes: bound, TrackPaths: true}); !errors.Is(err, ErrMemory) {
		t.Errorf("tracked solve accepted: %v", err)
	}
}

func TestNextHopAccessors(t *testing.T) {
	nh := newNextHop(3)
	if nh.N() != 3 {
		t.Errorf("N = %d", nh.N())
	}
	if nh.At(1, 2) != -1 {
		t.Errorf("fresh At = %d, want -1", nh.At(1, 2))
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g, err := gen.BarabasiAlbert(50, 2, 7, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, SeqBasic, Options{TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a distance: Verify must notice the mismatch.
	var s, v int32 = 0, 1
	if res.D.At(int(s), int(v)) == matrix.Inf {
		t.Skip("vertex 1 unreachable on this seed")
	}
	res.D.Set(int(s), int(v), res.D.At(int(s), int(v))+1)
	if err := res.Next.Verify(g, res.D, s, v); err == nil {
		t.Error("Verify accepted a corrupted distance")
	}
}
