package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

func TestSolveSubsetMatchesFullRows(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		ref := baseline.FloydWarshall(g)
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(g.N())
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(g.N()))
		}
		res, err := SolveSubset(g, sources, Options{Workers: 3})
		if err != nil {
			return false
		}
		for _, s := range res.Sources {
			row := res.Row(s)
			for v := 0; v < g.N(); v++ {
				if row[v] != ref.At(int(s), v) {
					t.Logf("seed %d: row %d col %d: %d != %d", seed, s, v, row[v], ref.At(int(s), v))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSubsetDeduplicates(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 3, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSubset(g, []int32{5, 5, 7, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 2 {
		t.Fatalf("sources = %v", res.Sources)
	}
}

func TestSolveSubsetDegreeOrder(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 4, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSubset(g, []int32{10, 20, 30, 40, 50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Sources); i++ {
		if g.OutDegree(res.Sources[i-1]) < g.OutDegree(res.Sources[i]) {
			t.Fatalf("subset sources not degree-descending: %v", res.Sources)
		}
	}
}

func TestSolveSubsetErrors(t *testing.T) {
	g, _ := graph.FromPairs(3, true, [][2]int32{{0, 1}})
	if _, err := SolveSubset(g, []int32{5}, Options{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-range source: %v", err)
	}
	if _, err := SolveSubset(g, []int32{-1}, Options{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative source: %v", err)
	}
	if _, err := SolveSubset(g, []int32{0, 1}, Options{MaxMemBytes: 4}); !errors.Is(err, ErrMemory) {
		t.Errorf("memory bound: %v", err)
	}
}

func TestSolveSubsetAccessors(t *testing.T) {
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSubset(g, []int32{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 3) != 3 {
		t.Errorf("At(0,3) = %d", res.At(0, 3))
	}
	if res.Row(2) != nil {
		t.Error("Row of unsolved source non-nil")
	}
	if res.MemBytes() != 16 {
		t.Errorf("MemBytes = %d", res.MemBytes())
	}
	defer func() {
		if recover() == nil {
			t.Error("At on unsolved source did not panic")
		}
	}()
	res.At(2, 0)
}

func TestSolveSubsetEmpty(t *testing.T) {
	g, _ := graph.FromPairs(3, true, [][2]int32{{0, 1}})
	res, err := SolveSubset(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 0 || res.MemBytes() != 0 {
		t.Errorf("empty subset: %v", res.Sources)
	}
}

func TestSolveSubsetAllSourcesEqualsFull(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 5, gen.Weighting{Min: 1, Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	sub, err := SolveSubset(g, all, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(g, ParAPSP, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < int32(g.N()); s++ {
		row := sub.Row(s)
		fullRow := full.D.Row(int(s))
		for v := range row {
			if row[v] != fullRow[v] {
				t.Fatalf("row %d differs at %d", s, v)
			}
		}
	}
}

func TestSolveSubsetRowReuseDisabled(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 3, 6, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolveSubset(g, []int32{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveSubset(g, []int32{1, 2, 3}, Options{DisableRowReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Sources {
		ra, rb := a.Row(s), b.Row(s)
		for v := range ra {
			if ra[v] != rb[v] {
				t.Fatalf("reuse ablation changed subset row %d at %d", s, v)
			}
		}
	}
}
