package core

import (
	"fmt"
	"sync"

	"parapsp/internal/graph"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
	"parapsp/internal/obs"
)

// The multi-source batch engine. The scalar solvers run one source at a
// time, so a batch of B sources streams the whole CSR adjacency B times;
// on the paper's unweighted power-law graphs the per-vertex work is
// trivial and that edge scan is the bound. The batch engine amortizes it:
//
//   - Unweighted graphs run a bit-parallel MS-BFS (Then et al., VLDB
//     2014): up to 64 sources share one uint64 lane word per vertex
//     (visit/next/seen bitmaps), each BFS level sweeps the adjacency once
//     for the whole batch, and finished levels are scattered into the
//     per-source distance rows. BFS levels ARE the exact hop-count
//     distances, so the result is bit-identical to the scalar solver's.
//
//   - Weighted graphs run a shared-sweep label-correcting SSSP: the B
//     tentative distance vectors are stored lane-major (B contiguous
//     entries per vertex), a lane bitmap marks which searches have each
//     vertex in their frontier, and every sweep reads each active
//     vertex's adjacency once while relaxing all its active lanes against
//     the hot edge. The fixpoint of label correction is the unique
//     shortest-distance vector, so this too matches the scalar solver
//     exactly.
//
// Completed-row reuse (the fold mechanism) is deliberately OFF inside a
// batch: a fold substitutes a finished row for a subtree expansion, but
// inside a bit-parallel batch no row is finished until the whole batch
// is, and folding one lane's row into another would break the lane
// packing (each fold is a per-pair row sweep — exactly the scalar work
// the batch exists to avoid). The batch's amortized edge scan replaces
// what reuse bought; the dispatch policy keeps the scalar engine for the
// regimes where reuse wins (tiny batches, tiny graphs, ablation runs).
// DESIGN.md §9 develops this trade-off.

// BatchMode selects the multi-source batch engine policy for Solve and
// SolveSubset.
type BatchMode int

const (
	// BatchAuto (the zero value) picks per graph: the batch engine when
	// the solve uses a parallel algorithm, the batch is at least
	// batchMinSources sources on a graph of at least batchMinVertices
	// vertices, and no scalar-only option is set; the scalar engine
	// otherwise. The sequential baselines (SeqBasic/SeqOptimized) never
	// auto-batch — they exist to measure the paper's per-source work, and
	// silently swapping their engine would change every number derived
	// from them.
	BatchAuto BatchMode = iota
	// BatchOff always runs the scalar engine. The paper-reproduction
	// experiments pin this so the measured mechanism stays the paper's.
	BatchOff
	// BatchForce runs the batch engine whenever it is legal (it still
	// falls back to scalar for TrackPaths, the queue ablations, and
	// SeqAdaptive, whose semantics are scalar by definition).
	BatchForce
)

// String names the mode for reports.
func (m BatchMode) String() string {
	switch m {
	case BatchAuto:
		return "auto"
	case BatchOff:
		return "off"
	case BatchForce:
		return "force"
	default:
		return "batch-mode?"
	}
}

const (
	// batchLaneWidth is the number of sources packed per lane word.
	batchLaneWidth = 64
	// batchMinVertices and batchMinSources gate BatchAuto: below either,
	// the scalar engine's frontier locality (and, across sources, its
	// completed-row reuse) beats the batch's per-level word sweeps.
	batchMinVertices = 1024
	batchMinSources  = 8
)

// Engine names for SubsetResult.Engine and the serve layer's solver tag.
const (
	EngineScalar = "scalar"
	EngineMSBFS  = "msbfs"
	EngineSweep  = "sweep"
)

// batchLegal reports whether the batch engine can replace the scalar one
// without changing observable semantics the caller opted into. The queue
// ablations (PaperQueue/HeapQueue), the reuse ablation, path tracking and
// the adaptive algorithm are scalar mechanisms by definition.
func batchLegal(alg Algorithm, opts Options) bool {
	return !opts.TrackPaths && !opts.PaperQueue && !opts.HeapQueue &&
		!opts.DisableRowReuse && alg != SeqAdaptive
}

// useBatch applies the dispatch policy for a k-source solve on an
// n-vertex graph with algorithm alg, assuming batchLegal already held.
func useBatch(mode BatchMode, alg Algorithm, n, k int) bool {
	switch mode {
	case BatchOff:
		return false
	case BatchForce:
		return true
	default:
		return alg >= ParAlg1 && k >= batchMinSources && n >= batchMinVertices
	}
}

// engineName reports which batch engine a graph dispatches to.
func engineName(g *graph.Graph) string {
	if g.Weighted() {
		return EngineSweep
	}
	return EngineMSBFS
}

// batchScratch is the per-worker arena of the batch engine: the three
// lane bitmaps of MS-BFS (visit/next double-buffer plus seen), the
// lane-major distance block of the weighted sweep, and the row-pointer
// buffer. It is pooled across batches and across solves (batchPool), so
// steady-state serving traffic allocates nothing on the batch path — the
// zero-alloc test in batch_test.go pins that.
//
// Invariant: between runs, visit and next are all-zero (both engines
// clear frontier words as they consume them and terminate with an empty
// frontier); seen and dist are dirty and re-initialized per run.
type batchScratch struct {
	n     int
	visit []uint64
	next  []uint64
	seen  []uint64
	dist  []matrix.Dist // lane-major weighted distances, cap grows to n*batch
	rows  [][]matrix.Dist
}

var batchPool sync.Pool

// getBatchScratch takes a scratch from the pool, (re)sizing it for an
// n-vertex graph. Steady-state (same n) gets take zero allocations.
func getBatchScratch(n int) *batchScratch {
	sc, _ := batchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{rows: make([][]matrix.Dist, 0, batchLaneWidth)}
	}
	if sc.n < n {
		sc.visit = make([]uint64, n)
		sc.next = make([]uint64, n)
		sc.seen = make([]uint64, n)
		sc.n = n
	}
	return sc
}

func putBatchScratch(sc *batchScratch) {
	sc.rows = sc.rows[:0]
	batchPool.Put(sc)
}

// msbfs runs one bit-parallel BFS batch: sources[i]'s distances land in
// rows[i], which must be Inf-initialized (diagonal included — msbfs
// writes the 0). len(sources) must be at most batchLaneWidth. Returns the
// number of level-synchronous sweeps.
func (sc *batchScratch) msbfs(g *graph.Graph, sources []int32, rows [][]matrix.Dist, st *Counters) int64 {
	n := g.N()
	visit, next, seen := sc.visit[:n], sc.next[:n], sc.seen[:n]
	for i := range seen {
		seen[i] = 0
	}
	for i, s := range sources {
		bit := uint64(1) << uint(i)
		visit[s] |= bit
		seen[s] |= bit
		rows[i][s] = 0
	}
	var levels int64
	for level := matrix.Dist(1); ; level++ {
		// One adjacency sweep advances every packed search one level.
		// Consuming visit words as we go keeps the double buffer clean
		// for the swap (see the scratch invariant).
		for v := 0; v < n; v++ {
			lanes := visit[v]
			if lanes == 0 {
				continue
			}
			visit[v] = 0
			adj := g.Neighbors(int32(v))
			st.EdgeScans += int64(len(adj))
			kernel.OrLanes(next, adj, lanes)
		}
		if !kernel.AndnNewBits(next, seen) {
			break // no lane discovered a new vertex: all BFS done
		}
		levels++
		st.BatchScattered += kernel.ScatterLevel(next, rows, level)
		visit, next = next, visit
	}
	return levels
}

// sweepSSSP runs one shared-sweep weighted batch: a level-synchronous
// label-correcting relaxation of all len(sources) searches over a
// lane-major distance block, one adjacency read per active vertex per
// sweep regardless of how many lanes are active on it. rows[i] must be
// Inf-initialized; distances are transposed into rows on convergence.
// Returns the number of sweeps.
func (sc *batchScratch) sweepSSSP(g *graph.Graph, sources []int32, rows [][]matrix.Dist, st *Counters) int64 {
	n := g.N()
	b := len(sources)
	if cap(sc.dist) < n*b {
		sc.dist = make([]matrix.Dist, n*b)
	}
	dist := sc.dist[:n*b]
	for i := range dist {
		dist[i] = matrix.Inf
	}
	active, nextAct := sc.visit[:n], sc.next[:n]
	for i, s := range sources {
		dist[int(s)*b+i] = 0
		active[s] |= 1 << uint(i)
	}
	var sweeps int64
	for {
		any := false
		for v := 0; v < n; v++ {
			lanes := active[v]
			if lanes == 0 {
				continue
			}
			active[v] = 0
			adj, w := g.NeighborsW(int32(v))
			st.EdgeScans += int64(len(adj))
			dv := dist[v*b : v*b+b : v*b+b]
			for j, u := range adj {
				du := dist[int(u)*b : int(u)*b+b : int(u)*b+b]
				if improved := kernel.RelaxLanes(du, dv, w[j], lanes); improved != 0 {
					nextAct[u] |= improved
					any = true
				}
			}
		}
		if !any {
			break
		}
		sweeps++
		active, nextAct = nextAct, active
	}
	// Transpose the lane-major block into the row-major destination rows
	// (write-sequential per row; the strided reads stay in cache because
	// consecutive v share lines).
	for i := range sources {
		row := rows[i]
		for v := 0; v < n; v++ {
			row[v] = dist[v*b+i]
		}
		st.BatchScattered += int64(n)
	}
	return sweeps
}

// laneKernel registers the two multi-source batch engines as lane-width
// source kernels: "msbfs" for unweighted graphs, "sweep" for weighted
// ones. Grain() == batchLaneWidth makes the pipeline runner hand each Run
// call one lane-width group of consecutive ordered sources — the batch the
// engine solves with a single shared traversal.
type laneKernel struct {
	name     string
	weighted bool
}

func init() {
	RegisterKernel(laneKernel{name: KernelMSBFS, weighted: false})
	RegisterKernel(laneKernel{name: KernelSweep, weighted: true})
}

func (k laneKernel) Name() string { return k.name }
func (k laneKernel) Grain() int   { return batchLaneWidth }

// Supports mirrors batchLegal for an explicitly selected lane kernel: the
// engines are single-weighting by construction, and the scalar-only
// mechanisms (paths, the queue ablations, reuse accounting) have no lane
// formulation.
func (k laneKernel) Supports(g *graph.Graph, opts Options) error {
	if g.Weighted() != k.weighted {
		want := "an unweighted"
		if k.weighted {
			want = "a weighted"
		}
		return fmt.Errorf("%w: kernel %q needs %s graph", ErrInvalid, k.name, want)
	}
	if opts.TrackPaths || opts.PaperQueue || opts.HeapQueue || opts.DisableRowReuse {
		return fmt.Errorf("%w: kernel %q cannot run the scalar-only options (paths/queue/reuse ablations)", ErrInvalid, k.name)
	}
	return nil
}

func (k laneKernel) Bind(rt *Runtime) KernelRun {
	return &laneRun{
		rt:        rt,
		weighted:  k.weighted,
		scratches: make([]*batchScratch, rt.Workers),
		counters:  make([]Counters, rt.Workers),
	}
}

type laneRun struct {
	rt        *Runtime
	weighted  bool
	scratches []*batchScratch
	counters  []Counters
}

// Run solves the lane-width source group rt.Sources[lo:hi] with one shared
// traversal. With a recorder, the batch records a batch-sweep span on its
// worker's lane (Index = batch ordinal, Arg = sweep count).
func (r *laneRun) Run(w, lo, hi int) {
	rt := r.rt
	sc := r.scratches[w]
	if sc == nil {
		sc = getBatchScratch(rt.G.N())
		r.scratches[w] = sc
	}
	rows := sc.rows[:0]
	for i := lo; i < hi; i++ {
		rows = append(rows, rt.Dest.row(rt.Sources[i]))
	}
	sc.rows = rows
	st := &r.counters[w]
	rec := rt.Rec
	var t0 int64
	if rec != nil {
		t0 = rec.Now()
	}
	var sweeps int64
	if r.weighted {
		sweeps = sc.sweepSSSP(rt.G, rt.Sources[lo:hi], rows, st)
	} else {
		sweeps = sc.msbfs(rt.G, rt.Sources[lo:hi], rows, st)
	}
	st.Batches++
	st.BatchSources += int64(hi - lo)
	st.BatchSweeps += sweeps
	if rec != nil {
		rec.Lane(w).Add(obs.Event{Phase: obs.PhaseBatchSweep,
			Start: t0, End: rec.Now(), Index: int64(lo / batchLaneWidth), Arg: sweeps})
	}
	for i := lo; i < hi; i++ {
		rt.Dest.publish(rt.Flags, rt.Sources[i])
	}
}

func (r *laneRun) Finish() Counters {
	var total Counters
	for w, sc := range r.scratches {
		if sc != nil {
			putBatchScratch(sc)
		}
		total.Add(r.counters[w])
	}
	return total
}
