package core

import (
	"fmt"
	"runtime"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// KernelSteadyAllocs measures the steady-state heap allocations per
// solved source of one kernel on g: the kernel is bound once, a warm-up
// prefix of sources grows the pooled scratch to its high-water mark (and
// publishes rows, so the fold path is live), and then a single source is
// re-solved `runs` times with its row and completion flag reset between
// runs. The returned value is the mean number of mallocs one re-solve
// performed — 0 for the pooled scalar kernels, which is exactly what the
// kernelcmp report's allocs_per_solve column and the bench assertions
// pin. The count is process-global (runtime.MemStats.Mallocs), so callers
// must not run concurrent work while measuring.
func KernelSteadyAllocs(g *graph.Graph, name string, runs int) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("%w: allocation probe needs ≥ 2 vertices", ErrInvalid)
	}
	if runs < 1 {
		runs = 10
	}
	opts := Options{Kernel: name}
	kern, err := resolveKernel(ParAPSP, g, opts, n)
	if err != nil {
		return 0, err
	}
	D := matrix.New(n)
	D.InitAPSP()
	f := newFlags(n)
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	// The measured source is the max-degree vertex: its row is dense in
	// the giant component, so re-publishing its summary never allocates a
	// finite-index list (a sparse fringe vertex would, charging the
	// kernel for a matrix-layer allocation).
	maxV := int32(0)
	for v := int32(1); v < int32(n); v++ {
		if g.OutDegree(v) > g.OutDegree(maxV) {
			maxV = v
		}
	}
	rt := &Runtime{
		G:       g,
		Opts:    opts,
		Workers: 1,
		Sources: sources,
		Dest:    rowDest{m: D},
		Flags:   f,
	}
	run := kern.Bind(rt)
	defer run.Finish()

	// Warm one grain-aligned prefix plus the measured source, so every
	// lazily-created buffer exists before counting starts.
	warm := kern.Grain()
	if warm >= n {
		warm = n - 1
	}
	sources[warm], sources[maxV] = sources[maxV], sources[warm]
	run.Run(0, 0, warm)
	s := warm
	sv := sources[s]
	resolve := func() {
		row := D.Row(int(sv))
		for i := range row {
			row[i] = matrix.Inf
		}
		row[sv] = 0
		f.v[sv].Store(0)
		run.Run(0, s, s+1)
	}
	resolve()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		resolve()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs), nil
}
