package core

import (
	"testing"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// TestDeltaWidthRegimes pins the bucket-width heuristic of the stepping
// kernels in both regimes: sparse graphs get the mean edge weight, dense
// graphs (mean degree ≥ denseDeltaDegree) get mean·(n/m), and the result
// is clamped to a positive floor when either rule truncates to zero.
func TestDeltaWidthRegimes(t *testing.T) {
	// Sparse ring, all weights 6: Δ = mean = 6.
	sparse := graph.NewBuilder(32, false)
	for v := int32(0); v < 32; v++ {
		if err := sparse.AddWeighted(v, (v+1)%32, 6); err != nil {
			t.Fatal(err)
		}
	}
	g, err := sparse.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := deltaWidth(g); got != 6 {
		t.Errorf("sparse: deltaWidth = %d, want mean weight 6", got)
	}

	// Dense undirected clique (n=40, mean degree 39, m=1560 arcs), all
	// weights 100: Δ = mean·(n/m) = 100·40/1560 = 2, not the mean.
	dense := graph.NewBuilder(40, true)
	for u := int32(0); u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			if err := dense.AddWeighted(u, v, 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err = dense.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := deltaWidth(g); got != 2 {
		t.Errorf("dense: deltaWidth = %d, want 100*40/1560 = 2", got)
	}

	// Same dense graph with minimal weights: the dense rule yields
	// 1·40/1560 = 0, which must clamp to the positive floor (Δ = 0 would
	// be an infinite bucket index).
	floor := graph.NewBuilder(40, true).ForceWeighted()
	for u := int32(0); u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			if err := floor.AddWeighted(u, v, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err = floor.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := deltaWidth(g); got != 1 {
		t.Errorf("floor: deltaWidth = %d, want clamp to 1", got)
	}

	// An edgeless graph must not divide by zero.
	empty, err := graph.NewBuilder(4, false).ForceWeighted().Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := deltaWidth(empty); got != 1 {
		t.Errorf("edgeless: deltaWidth = %d, want 1", got)
	}
}

// kernelSteadyAllocs measures the steady-state allocations of one solved
// source for a bound kernel: Bind once, warm a prefix of sources (growing
// the pooled scratch and publishing rows so the fold path is live), then
// repeatedly re-solve one source with its row and flag reset. The graph is
// the connected grid, so published rows are dense and SummarizeRow never
// allocates a finite-index list.
func kernelSteadyAllocs(t *testing.T, name string) float64 {
	t.Helper()
	g := batteryGraph(t, "grid", false, true, 5)
	n := g.N()
	D := matrix.New(n)
	D.InitAPSP()
	f := newFlags(n)
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	kern, err := LookupKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{
		G:       g,
		Opts:    Options{Kernel: name},
		Workers: 1,
		Sources: sources,
		Dest:    rowDest{m: D},
		Flags:   f,
	}
	run := kern.Bind(rt)
	warm := 8
	run.Run(0, 0, warm)
	s := warm
	allocs := testing.AllocsPerRun(20, func() {
		row := D.Row(s)
		for i := range row {
			row[i] = matrix.Inf
		}
		row[s] = 0
		f.v[s].Store(0)
		run.Run(0, s, s+1)
	})
	run.Finish()
	return allocs
}

// TestSteppingKernelZeroAllocs pins the pooled kernels at zero
// steady-state allocations per solved source — the lazy stepping kernels'
// design requirement, with the eager kernels held to the same bar.
func TestSteppingKernelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, name := range []string{KernelDijkstra, KernelDelta, KernelDeltaStar, KernelRho} {
		if got := kernelSteadyAllocs(t, name); got != 0 {
			t.Errorf("kernel %s: %.1f allocs per solved source, want 0", name, got)
		}
	}
}

// TestKernelParDijParallelRelax forces the parallel relaxation path (the
// battery graphs rarely reach the production grain) and checks pardij
// stays checksum-identical to the baseline through it. Running under
// -race (the kernel battery pattern matches this name) makes it the
// data-race proof for the candidate-buffer fan-out.
func TestKernelParDijParallelRelax(t *testing.T) {
	old := pardijGrain
	pardijGrain = 4
	defer func() { pardijGrain = old }()
	for _, weighted := range []bool{false, true} {
		g := batteryGraph(t, "power-law", false, weighted, 9)
		base, err := Solve(g, ParAPSP, Options{Workers: 2, Batch: BatchOff})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(g, ParAPSP, Options{Workers: 8, Kernel: KernelParDij})
		if err != nil {
			t.Fatal(err)
		}
		if res.D.Checksum() != base.D.Checksum() {
			t.Errorf("weighted=%v: pardij parallel relax diverged from baseline", weighted)
		}
		// The reuse ablation exercises the pure phased Dijkstra (no folds).
		res, err = Solve(g, ParAPSP, Options{Workers: 8, Kernel: KernelParDij, DisableRowReuse: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.D.Checksum() != base.D.Checksum() {
			t.Errorf("weighted=%v: pardij without reuse diverged from baseline", weighted)
		}
	}
}

// TestSelectKth pins the quickselect against a sort-based oracle.
func TestSelectKth(t *testing.T) {
	vals := []matrix.Dist{9, 3, 7, 3, 1, 8, 2, 7, 5, 4, 6, 3}
	sorted := []matrix.Dist{1, 2, 3, 3, 3, 4, 5, 6, 7, 7, 8, 9}
	for k := 1; k <= len(vals); k++ {
		ds := append([]matrix.Dist(nil), vals...)
		if got := selectKth(ds, k); got != sorted[k-1] {
			t.Errorf("selectKth(k=%d) = %d, want %d", k, got, sorted[k-1])
		}
	}
}
