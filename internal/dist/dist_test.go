package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

func TestDistributedMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(4 * n)
		var w gen.Weighting
		if rng.Intn(2) == 0 {
			w = gen.Weighting{Min: 1, Max: 9}
		}
		g, err := gen.ErdosRenyiGNM(n, m, rng.Intn(2) == 0, seed, w)
		if err != nil {
			return false
		}
		ref := baseline.FloydWarshall(g)
		for _, nodes := range []int{1, 2, 5} {
			D, _, err := Solve(g, Config{Nodes: nodes})
			if err != nil || !D.Equal(ref) {
				t.Logf("seed %d nodes %d: %v", seed, nodes, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedScaleFree(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 3, 3, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	for _, nodes := range []int{1, 2, 4, 8} {
		D, st, err := Solve(g, Config{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		if !D.Equal(ref) {
			t.Fatalf("%d nodes: wrong solution", nodes)
		}
		wantMsgs := int64(g.N()) * int64(nodes-1)
		if st.Messages != wantMsgs {
			t.Errorf("%d nodes: %d messages, want %d (every row to every peer)", nodes, st.Messages, wantMsgs)
		}
		if st.Bytes != uint64(st.Messages)*uint64(g.N())*4 {
			t.Errorf("%d nodes: byte accounting off: %d", nodes, st.Bytes)
		}
		if nodes == 1 && st.Messages != 0 {
			t.Errorf("single node sent %d messages", st.Messages)
		}
	}
}

func TestDistributedNoBroadcastStillExact(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 4, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	D, st, err := Solve(g, Config{Nodes: 4, DisableBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !D.Equal(ref) {
		t.Fatal("no-broadcast solution wrong")
	}
	if st.Messages != 0 || st.Bytes != 0 || st.RemoteFolds != 0 {
		t.Errorf("no-broadcast stats = %+v", st)
	}
}

func TestDistributedFoldAccounting(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 4, 5, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Solve(g, Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalFolds+st.RemoteFolds == 0 {
		t.Error("no folds recorded on a dense scale-free graph; reuse path dead?")
	}
	// Single node: all folds local.
	_, st1, err := Solve(g, Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.RemoteFolds != 0 {
		t.Errorf("single node recorded %d remote folds", st1.RemoteFolds)
	}
	if st1.LocalFolds == 0 {
		t.Error("single node recorded no local folds")
	}
}

func TestDistributedEdgeCases(t *testing.T) {
	if _, _, err := Solve(nilSafeGraph(t, 0), Config{Nodes: 3}); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	g1 := nilSafeGraph(t, 1)
	D, _, err := Solve(g1, Config{Nodes: 5})
	if err != nil || D.At(0, 0) != 0 {
		t.Errorf("singleton: %v", err)
	}
	if _, _, err := Solve(g1, Config{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	// More nodes than vertices clamps.
	g3 := nilSafeGraph(t, 3)
	if _, _, err := Solve(g3, Config{Nodes: 64}); err != nil {
		t.Errorf("nodes > n: %v", err)
	}
	// Tiny inbox still completes (receivers drain concurrently).
	g, err := gen.BarabasiAlbert(100, 2, 6, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(g, Config{Nodes: 4, InboxDepth: 1}); err != nil {
		t.Errorf("tiny inbox: %v", err)
	}
}

func nilSafeGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	var pairs [][2]int32
	for i := 0; i+1 < n; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32(i + 1)})
	}
	g, err := graph.FromPairs(n, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
