// Package dist prototypes the paper's stated future work — "extend the
// ParAPSP algorithm on distributed-memory parallel environments" — as a
// message-passing simulation runnable on one machine.
//
// The cluster model: P nodes, each with private memory, connected by
// reliable ordered links (Go channels standing in for MPI point-to-point).
// Sources are dealt to nodes round-robin in MultiLists degree-descending
// order, so every node works on its highest-degree sources first, the
// property ParAPSP's dynamic-cyclic schedule preserves on shared memory.
// Each node runs the modified Dijkstra over its own sources; when a row
// completes, the node broadcasts it, and every node folds received remote
// rows into its later searches exactly like locally completed ones.
//
// Because a search may only use rows that are *locally available* — its
// node's own completed rows plus those already received — the result is
// still the exact APSP solution (row reuse is an optimization, never a
// correctness requirement), but the reuse rate, and hence the work, now
// depends on communication. The Stats the simulation reports (messages,
// bytes, fold hits) are the quantities a real MPI port would pay for; the
// "distmem" experiment sweeps node counts to expose the compute/
// communication trade-off the future-work section gestures at.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"parapsp/internal/graph"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
	"parapsp/internal/order"
)

// Config sizes the simulated cluster.
type Config struct {
	// Nodes is the number of distributed-memory nodes (>= 1).
	Nodes int
	// DisableBroadcast turns off row exchange entirely: nodes reuse only
	// their own completed rows. Ablation for the communication benefit.
	DisableBroadcast bool
	// InboxDepth is the per-node channel buffer (default: number of
	// vertices, so broadcasts never block in the simulation).
	InboxDepth int
}

// Stats reports the communication a real distributed run would incur.
type Stats struct {
	// Messages is the number of point-to-point row transfers.
	Messages int64
	// Bytes is the payload volume of those transfers (4 bytes per entry).
	Bytes uint64
	// RemoteFolds counts row-combine hits on *received* rows; LocalFolds
	// on rows the node completed itself. Their ratio shows how much of
	// the dynamic-programming benefit communication buys.
	RemoteFolds, LocalFolds int64
}

// rowMsg is one broadcast row. The simulation passes a slice header
// (zero-copy "network"); contents are immutable after broadcast, so
// receivers may alias it safely. Bytes are accounted as a real transfer.
type rowMsg struct {
	src int32
	row []matrix.Dist
}

// Solve runs the simulated distributed ParAPSP and returns the exact
// distance matrix plus communication statistics.
func Solve(g *graph.Graph, cfg Config) (*matrix.Matrix, Stats, error) {
	if cfg.Nodes < 1 {
		return nil, Stats{}, fmt.Errorf("dist: need at least 1 node, got %d", cfg.Nodes)
	}
	n := g.N()
	P := cfg.Nodes
	if P > n && n > 0 {
		P = n
	}
	if P < 1 {
		P = 1
	}
	depth := cfg.InboxDepth
	if depth <= 0 {
		depth = n + 1
	}

	// Global result matrix. Each row is written by exactly one node (the
	// owner of its source), so the gather step is free in the simulation;
	// a real port would leave rows distributed.
	D := matrix.New(n)
	D.InitAPSP()

	src := order.MultiLists(g.Degrees(), P, 0.1)

	// ownedBy[i] = node owning the i-th source in the global order.
	inboxes := make([]chan rowMsg, P)
	for i := range inboxes {
		inboxes[i] = make(chan rowMsg, depth)
	}

	var stats Stats
	var wgCompute, wgRecv sync.WaitGroup

	type node struct {
		id    int
		avail []atomic.Pointer[[]matrix.Dist] // locally visible completed rows
	}
	nodes := make([]*node, P)
	for i := range nodes {
		nodes[i] = &node{id: i, avail: make([]atomic.Pointer[[]matrix.Dist], n)}
	}

	// Receivers: drain the inbox, publishing rows into local memory.
	for _, nd := range nodes {
		wgRecv.Add(1)
		go func(nd *node) {
			defer wgRecv.Done()
			for msg := range inboxes[nd.id] {
				row := msg.row
				nd.avail[msg.src].Store(&row)
			}
		}(nd)
	}

	// Compute: each node processes its round-robin share of the ordered
	// sources with the modified Dijkstra restricted to local visibility.
	for _, nd := range nodes {
		wgCompute.Add(1)
		go func(nd *node) {
			defer wgCompute.Done()
			inQueue := make([]bool, n)
			queue := make([]int32, 0, 64)
			owned := make([]bool, n)
			for i := nd.id; i < n; i += P {
				owned[src[i]] = true
			}
			for i := nd.id; i < n; i += P {
				s := src[i]
				row := D.Row(int(s))
				queue = localDijkstra(g, s, row, nd.avail, owned, inQueue, queue[:0], &stats)
				// Publish locally, then broadcast.
				r := row
				nd.avail[s].Store(&r)
				if !cfg.DisableBroadcast {
					for _, other := range nodes {
						if other.id == nd.id {
							continue
						}
						inboxes[other.id] <- rowMsg{src: s, row: row}
						atomic.AddInt64(&stats.Messages, 1)
						atomic.AddUint64(&stats.Bytes, uint64(n)*4)
					}
				}
			}
		}(nd)
	}

	wgCompute.Wait()
	for _, ch := range inboxes {
		close(ch)
	}
	wgRecv.Wait()
	return D, stats, nil
}

// localDijkstra is the modified Dijkstra with visibility restricted to the
// rows published in avail. It returns the (reset) queue for reuse.
func localDijkstra(g *graph.Graph, s int32, row []matrix.Dist, avail []atomic.Pointer[[]matrix.Dist], owned, inQueue []bool, q []int32, stats *Stats) []int32 {
	row[s] = 0
	q = append(q, s)
	inQueue[s] = true
	head := 0
	for head < len(q) {
		t := q[head]
		head++
		if head > 1024 && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		inQueue[t] = false
		dt := row[t]

		if t != s {
			if rp := avail[t].Load(); rp != nil {
				// Fold in the complete row of t via the blocked kernel.
				// &row[0] == &rt[0] can not happen: a node never revisits
				// its own source.
				kernel.FoldRow(row, *rp, dt)
				if owned[t] {
					atomic.AddInt64(&stats.LocalFolds, 1)
				} else {
					atomic.AddInt64(&stats.RemoteFolds, 1)
				}
				continue
			}
		}

		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < row[v] {
				row[v] = nd
				if !inQueue[v] {
					inQueue[v] = true
					q = append(q, v)
				}
			}
		}
	}
	return q[:0]
}
