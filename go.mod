module parapsp

go 1.22
