// Package parapsp is the public API of this repository: a shared-memory
// parallel all-pairs shortest paths (APSP) library for complex-network
// analysis, reproducing Kim, Choi & Bae, "Efficient Parallel All-Pairs
// Shortest Paths Algorithm for Complex Graph Analysis" (ICPP 2018
// Companion), which parallelizes Peng et al.'s fast APSP algorithm and
// contributes the exact, lock-free MultiLists parallel ordering.
//
// # Quick start
//
//	g, err := parapsp.GenerateBarabasiAlbert(10_000, 4, 1)
//	if err != nil { ... }
//	res, err := parapsp.Solve(g, parapsp.Options{Workers: 8})
//	if err != nil { ... }
//	fmt.Println("diameter:", parapsp.Diameter(res.D))
//
// The default Solve configuration is the paper's ParAPSP algorithm:
// MultiLists degree-descending ordering followed by a dynamic-cyclic
// parallel loop of modified-Dijkstra runs that reuse completed rows.
// Every other algorithm the paper measures (the sequential basic,
// optimized and adaptive solvers, ParAlg1, ParAlg2) is selectable through
// Options.Algorithm, and every alternative ordering procedure
// (selection sort, ParBuckets, ParMax) through Options.Ordering — all of
// them produce the identical exact solution.
//
// Graphs are immutable CSR structures built with NewBuilder or loaded from
// SNAP/KONECT edge lists with LoadEdgeList; synthetic scale-free inputs
// come from the Generate* functions. Analysis helpers (Diameter,
// Closeness, ...) consume the distance matrix.
package parapsp

import (
	"io"

	"parapsp/internal/analysis"
	"parapsp/internal/core"
	"parapsp/internal/dist"
	"parapsp/internal/gen"
	"parapsp/internal/gio"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/oracle"
	"parapsp/internal/order"
	"parapsp/internal/sched"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Graph is an immutable CSR graph over dense vertex ids [0, N()).
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// Edge is a weighted directed edge used during construction.
	Edge = graph.Edge
	// Dist is the distance type; Inf marks unreachable pairs.
	Dist = matrix.Dist
	// Matrix is the dense n-by-n APSP distance matrix.
	Matrix = matrix.Matrix
	// Result carries the distance matrix plus phase timings.
	Result = core.Result
	// NextHop is the successor matrix for shortest-path reconstruction
	// (Result.Next when Options.TrackPaths is set).
	NextHop = core.NextHop
	// Algorithm selects an APSP solver (AlgSeqBasic ... AlgParAPSP).
	Algorithm = core.Algorithm
	// OrderingProcedure selects a source-ordering procedure.
	OrderingProcedure = order.Procedure
	// Schedule selects the parallel loop schedule.
	Schedule = sched.Scheme
	// Weighting requests random edge weights from the generators.
	Weighting = gen.Weighting
)

// Inf is the distance of unreachable vertex pairs.
const Inf = matrix.Inf

// Algorithms, in the paper's naming.
const (
	AlgSeqBasic     = core.SeqBasic
	AlgSeqOptimized = core.SeqOptimized
	AlgSeqAdaptive  = core.SeqAdaptive
	AlgParAlg1      = core.ParAlg1
	AlgParAlg2      = core.ParAlg2
	AlgParAPSP      = core.ParAPSP
)

// Ordering procedures (Section 4 of the paper).
const (
	OrderSelection  = order.Selection
	OrderSeqBucket  = order.SeqBucket
	OrderParBuckets = order.ParBucketsProc
	OrderParMax     = order.ParMaxProc
	OrderMultiLists = order.MultiListsProc
)

// Loop schedules (Figure 1 of the paper).
const (
	ScheduleBlock         = sched.Block
	ScheduleStaticCyclic  = sched.StaticCyclic
	ScheduleDynamicCyclic = sched.DynamicCyclic
)

// Options configures Solve. The zero value runs the paper's ParAPSP on a
// single worker.
type Options struct {
	// Algorithm selects the solver; default AlgParAPSP.
	Algorithm Algorithm
	// Workers is the parallelism; default 1. Values below 1 mean 1.
	Workers int
	// Ordering overrides ParAPSP's ordering procedure (default
	// MultiLists). Ignored by algorithms whose ordering is fixed.
	Ordering OrderingProcedure
	// MaxMemBytes, when non-zero, refuses runs whose n*n distance matrix
	// would exceed the bound instead of exhausting memory.
	MaxMemBytes uint64
	// TrackPaths additionally computes the next-hop matrix so shortest
	// paths can be reconstructed with Result.Next.Path(s, v). Doubles
	// the memory footprint.
	TrackPaths bool
}

// Solve computes exact all-pairs shortest paths on g.
func Solve(g *Graph, opts Options) (*Result, error) {
	alg := opts.Algorithm
	if alg == Algorithm(0) {
		// Zero value means "the paper's contribution".
		alg = AlgParAPSP
	}
	copts := core.Options{
		Workers:     opts.Workers,
		Ordering:    opts.Ordering,
		MaxMemBytes: opts.MaxMemBytes,
		TrackPaths:  opts.TrackPaths,
	}
	return core.Solve(g, alg, copts)
}

// SolveWith exposes the full low-level configuration (schedules, ratios,
// ablation switches) for benchmark-grade control; see core.Options.
func SolveWith(g *Graph, alg Algorithm, opts core.Options) (*Result, error) {
	return core.Solve(g, alg, opts)
}

// SubsetResult holds shortest-path rows for a subset of sources.
type SubsetResult = core.SubsetResult

// SolveSubset computes exact shortest-path rows for the given sources
// only, in O(len(sources) * n) memory — the escape hatch when the full
// n*n matrix does not fit (the paper's 194k-vertex dataset already needs
// ~150 GB). Rows still reuse each other's completed results.
func SolveSubset(g *Graph, sources []int32, opts Options) (*SubsetResult, error) {
	return core.SolveSubset(g, sources, core.Options{
		Workers:     opts.Workers,
		MaxMemBytes: opts.MaxMemBytes,
	})
}

// NewBuilder starts building a graph over n vertices; undirected graphs
// materialize both arc directions.
func NewBuilder(n int, undirected bool) *Builder { return graph.NewBuilder(n, undirected) }

// FromEdges builds a graph in one call.
func FromEdges(n int, undirected bool, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, undirected, edges)
}

// LoadEdgeList reads a SNAP/KONECT edge list ('#'/'%' comments, optional
// ".gz" suffix). Returned labels map dense ids back to the file's ids.
func LoadEdgeList(path string, undirected, weighted bool) (*Graph, []int64, error) {
	res, err := gio.ReadFile(path, gio.Options{Undirected: undirected, Weighted: weighted})
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Labels, nil
}

// ReadEdgeList parses an edge list from r (same format as LoadEdgeList).
func ReadEdgeList(r io.Reader, undirected, weighted bool) (*Graph, []int64, error) {
	res, err := gio.ReadEdgeList(r, gio.Options{Undirected: undirected, Weighted: weighted})
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Labels, nil
}

// WriteEdgeList writes g in SNAP format; labels may be nil for identity.
func WriteEdgeList(w io.Writer, g *Graph, labels []int64) error {
	return gio.WriteEdgeList(w, g, labels)
}

// GenerateBarabasiAlbert grows an undirected scale-free graph of n
// vertices, each new vertex attaching m edges preferentially.
func GenerateBarabasiAlbert(n, m int, seed int64) (*Graph, error) {
	return gen.BarabasiAlbert(n, m, seed, gen.Weighting{})
}

// GenerateErdosRenyi returns a uniform G(n,m) random graph.
func GenerateErdosRenyi(n, m int, undirected bool, seed int64) (*Graph, error) {
	return gen.ErdosRenyiGNM(n, m, undirected, seed, gen.Weighting{})
}

// GenerateWattsStrogatz returns a small-world graph (ring lattice of
// degree k, rewiring probability beta).
func GenerateWattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	return gen.WattsStrogatz(n, k, beta, seed, gen.Weighting{})
}

// OrderByDegreeDesc returns the vertices of g ordered by non-increasing
// degree using the paper's MultiLists procedure across workers.
func OrderByDegreeDesc(g *Graph, workers int) []int32 {
	return order.MultiLists(g.Degrees(), workers, 0.1)
}

// CountingSortDesc stably sorts indices of non-negative integer keys in
// non-increasing key order in O(n + maxKey) — the general-purpose use of
// the paper's ordering machinery.
func CountingSortDesc(keys []int) ([]int32, error) { return order.CountingSortDesc(keys) }

// ParallelCountingSortDesc is CountingSortDesc across workers (exact and
// lock-free, the paper's MultiLists).
func ParallelCountingSortDesc(keys []int, workers int) ([]int32, error) {
	return order.ParallelCountingSortDesc(keys, workers)
}

// ParallelRadixSortDesc stably sorts indices of 31-bit non-negative keys
// in non-increasing order with a parallel LSD radix sort — the package's
// ordering machinery extended past the bounded-key restriction.
func ParallelRadixSortDesc(keys []int, workers int) ([]int32, error) {
	return order.ParallelRadixSortDesc(keys, workers)
}

// ReadMatrixMarket parses a graph in Matrix Market coordinate format.
func ReadMatrixMarket(r io.Reader) (*Graph, []int64, error) {
	res, err := gio.ReadMatrixMarket(r)
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Labels, nil
}

// WriteMatrixMarket writes g in Matrix Market coordinate format.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return gio.WriteMatrixMarket(w, g) }

// Analysis re-exports: complex-network statistics over the distance matrix.

// Diameter returns the longest shortest path (over reachable pairs).
func Diameter(D *Matrix) Dist { return analysis.Diameter(D) }

// Radius returns the smallest non-zero vertex eccentricity.
func Radius(D *Matrix) Dist { return analysis.Radius(D) }

// Eccentricities returns each vertex's maximum finite distance.
func Eccentricities(D *Matrix) []Dist { return analysis.Eccentricities(D) }

// AveragePathLength returns the mean distance over reachable ordered pairs.
func AveragePathLength(D *Matrix) float64 { return analysis.AveragePathLength(D) }

// Closeness returns Wasserman-Faust closeness centrality per vertex.
func Closeness(D *Matrix) []float64 { return analysis.Closeness(D) }

// Harmonic returns harmonic centrality per vertex.
func Harmonic(D *Matrix) []float64 { return analysis.Harmonic(D) }

// TopK returns the indices of the k largest values, descending.
func TopK(values []float64, k int) []int { return analysis.TopK(values, k) }

// Components labels the weakly connected components of g.
func Components(g *Graph) []int { return analysis.Components(g) }

// StronglyConnectedComponents labels the strongly connected components of
// g (Tarjan; ids in reverse topological order of the condensation).
func StronglyConnectedComponents(g *Graph) []int { return analysis.SCC(g) }

// Betweenness computes exact betweenness centrality of an unweighted
// graph (Brandes), parallelized over sources like the APSP solvers.
// Weighted graphs need BetweennessWeighted.
func Betweenness(g *Graph, workers int) []float64 { return analysis.Betweenness(g, workers) }

// BetweennessWeighted is Brandes' betweenness with a Dijkstra inner loop,
// valid for positive edge weights (and equal to Betweenness on
// unweighted graphs).
func BetweennessWeighted(g *Graph, workers int) []float64 {
	return analysis.BetweennessWeighted(g, workers)
}

// GlobalClustering returns the Watts-Strogatz network clustering
// coefficient — with a short AveragePathLength, the "small-world"
// signature the paper attributes to real complex networks.
func GlobalClustering(g *Graph, workers int) float64 {
	return analysis.GlobalClustering(g, workers)
}

// LocalClustering returns each vertex's local clustering coefficient.
func LocalClustering(g *Graph, workers int) []float64 {
	return analysis.LocalClustering(g, workers)
}

// KCore returns each vertex's core number (bucket-peeling, O(n+m)).
func KCore(g *Graph) []int { return analysis.KCore(g) }

// Degeneracy returns the maximum core number of g.
func Degeneracy(g *Graph) int { return analysis.Degeneracy(g) }

// DiameterBounds estimates the diameter of an unweighted graph by
// iterated double-sweep BFS, returning lower and upper bounds without the
// O(n^2) matrix. On complex networks the bounds typically meet.
func DiameterBounds(g *Graph, sweeps int) (lower, upper Dist) {
	return analysis.DiameterBounds(g, sweeps)
}

// PageRank computes the PageRank vector by parallel power iteration
// (damping 0.85, tolerance 1e-9 and 100 iterations when zero values are
// passed). Scores sum to 1.
func PageRank(g *Graph, damping, tol float64, maxIter, workers int) []float64 {
	return analysis.PageRank(g, damping, tol, maxIter, workers)
}

// SSSP computes one single-source distance row without APSP bookkeeping.
func SSSP(g *Graph, source int32) []Dist { return analysis.SSSPDistances(g, source) }

// DistanceOracle answers approximate distance queries from landmark rows
// in O(k*n) memory — the regime past the O(n^2) APSP memory wall.
type DistanceOracle = oracle.Oracle

// BuildOracle computes exact rows for the k highest-degree landmarks and
// returns an oracle whose Bounds(u, v) sandwich the true distance.
func BuildOracle(g *Graph, landmarks, workers int) (*DistanceOracle, error) {
	return oracle.Build(g, oracle.Options{Landmarks: landmarks, Workers: workers})
}

// Assortativity returns Newman's degree assortativity coefficient.
func Assortativity(g *Graph) float64 { return analysis.Assortativity(g) }

// LargestComponentSubgraph extracts the largest weakly connected
// component as its own graph (dense new ids), returning the mapping from
// new ids back to original ids. Running APSP on the component avoids
// filling most of the matrix with Inf on fragmented real-world graphs.
func LargestComponentSubgraph(g *Graph) (*Graph, []int32, error) {
	return g.InducedSubgraph(analysis.LargestComponent(g))
}

// DistStats reports the communication of a simulated distributed solve.
type DistStats = dist.Stats

// SolveDistributed runs the distributed-memory ParAPSP prototype (the
// paper's stated future work) on a simulated cluster of the given number
// of message-passing nodes, returning the exact distance matrix and the
// communication statistics a real MPI port would incur.
func SolveDistributed(g *Graph, nodes int) (*Matrix, DistStats, error) {
	return dist.Solve(g, dist.Config{Nodes: nodes})
}

// EstimateMatrixBytes reports the distance-matrix payload for n vertices,
// for sizing runs before committing memory (the paper's experiments are
// memory-gated: 194k vertices already need ~150 GB).
func EstimateMatrixBytes(n int) uint64 { return matrix.EstimateMemBytes(n) }
