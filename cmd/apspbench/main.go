// Command apspbench regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-in datasets.
//
// Usage:
//
//	apspbench -list
//	apspbench -exp fig8,fig9
//	apspbench -exp all -scale 1.0 -threads 1,2,4,8,16 -runs 3
//	apspbench -kerneljson BENCH_PR6.json
//	apspbench -in roads.txt -weighted -kernel delta -trace trace.json
//
// Every experiment prints the paper's expected qualitative shape next to
// the measured numbers; EXPERIMENTS.md records a full run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"parapsp/internal/bench"
	"parapsp/internal/core"
	"parapsp/internal/gio"
)

func main() {
	var lf gio.LoadFlags
	lf.Register(flag.CommandLine, "in")
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exps    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 = harness defaults; larger needs more memory/time)")
		threads = flag.String("threads", "1,2,4,8,16", "comma-separated worker-count sweep")
		runs    = flag.Int("runs", 1, "repetitions per measurement (paper: 10)")
		seed    = flag.Int64("seed", 42, "random seed for the synthetic datasets")
		maxMem  = flag.Uint64("maxmem-mb", 4096, "distance-matrix memory bound in MiB")
		kern    = flag.String("kernel", "", "SSSP kernel of the -trace/-metrics solve: "+strings.Join(core.Kernels(), "|")+", or "+core.KernelAuto+" to pick from graph features (default: static policy)")
		bjson   = flag.String("benchjson", "", "write the kernels experiment report as JSON to this path and exit")
		kjson   = flag.String("kerneljson", "", "write the kernelcmp experiment report as JSON to this path and exit")
		batchj  = flag.String("batchjson", "", "write the batch experiment report as JSON to this path and exit")
		sjson   = flag.String("servejson", "", "write the serve experiment report as JSON to this path and exit")
		stjson  = flag.String("storejson", "", "write the tiered-store experiment report as JSON to this path and exit")
		ljson   = flag.String("loadjson", "", "write the two-tier load experiment report as JSON to this path and exit")
		trace   = flag.String("trace", "", "run one instrumented ParAPSP solve, write a Chrome trace_event JSON to this path, and exit")
		metrics = flag.Bool("metrics", false, "run one instrumented ParAPSP solve, print its metrics as JSON on stdout, and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-20s %-20s %s\n", e.ID, "["+e.Paper+"]", e.Title)
		}
		return
	}

	sweep, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{
		Scale:       *scale,
		Threads:     sweep,
		Runs:        *runs,
		Seed:        *seed,
		MaxMemBytes: *maxMem << 20,
		Kernel:      *kern,
	}

	if *bjson != "" {
		if err := bench.WriteKernelReport(*bjson, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *bjson)
		return
	}

	if *kjson != "" {
		if err := bench.WriteKernelCompareReport(*kjson, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *kjson)
		return
	}

	if *batchj != "" {
		if err := bench.WriteBatchReport(*batchj, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *batchj)
		return
	}

	if *sjson != "" {
		if err := bench.WriteServeReport(*sjson, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *sjson)
		return
	}

	if *stjson != "" {
		if err := bench.WriteStoreReport(*stjson, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *stjson)
		return
	}

	if *ljson != "" {
		if err := bench.WriteLoadReport(*ljson, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *ljson)
		return
	}

	if *trace != "" || *metrics {
		// One instrumented solve; the metrics JSON must stay pure on
		// stdout so it can be piped, so progress goes to stderr.
		workers := tracedWorkers(sweep)
		var traceW io.Writer
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			traceW = f
		}
		var metricsW io.Writer
		if *metrics {
			metricsW = os.Stdout
		}
		if lf.Path != "" {
			// Trace a real graph file instead of the WordNet stand-in.
			loaded, err := lf.Load()
			if err != nil {
				fatal(err)
			}
			err = bench.RunTracedOn(loaded.Graph, cfg, workers, traceW, metricsW)
			if err != nil {
				fatal(err)
			}
		} else if err := bench.RunTraced(cfg, workers, traceW, metricsW); err != nil {
			fatal(err)
		}
		if *trace != "" {
			fmt.Fprintln(os.Stderr, "apspbench: wrote trace to", *trace)
		}
		return
	}

	if *exps == "all" {
		if err := bench.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	for _, id := range strings.Split(*exps, ",") {
		e, err := bench.Get(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		if err := bench.RunOne(e, cfg, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
	}
}

// tracedWorkers picks the worker count for a -trace/-metrics solve: the
// widest of the sweep the machine can run in parallel.
func tracedWorkers(sweep []int) int {
	w := 1
	for _, p := range sweep {
		if p > w && p <= runtime.NumCPU() {
			w = p
		}
	}
	return w
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("apspbench: bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apspbench:", err)
	os.Exit(1)
}
