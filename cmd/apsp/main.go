// Command apsp computes exact all-pairs shortest paths on an edge-list
// file (SNAP/KONECT format, optionally gzipped) with the paper's ParAPSP
// algorithm and prints the network statistics the paper's introduction
// motivates: diameter, radius, average path length, and the most central
// vertices.
//
// Usage:
//
//	apsp -in graph.txt -undirected -workers 8
//	apsp -in social.txt.gz -undirected -top 20
//	apsp -in roads.txt -weighted -algorithm ParAlg2
//	apsp -in roads.txt -weighted -kernel delta
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parapsp"
	"parapsp/internal/core"
	"parapsp/internal/gio"
	"parapsp/internal/obs"
)

func main() {
	var lf gio.LoadFlags
	lf.Register(flag.CommandLine, "in")
	var (
		workers   = flag.Int("workers", 1, "parallel workers")
		algorithm = flag.String("algorithm", "ParAPSP", "seq-basic|seq-optimized|seq-adaptive|ParAlg1|ParAlg2|ParAPSP")
		kernelSel = flag.String("kernel", "", "SSSP kernel: "+strings.Join(core.Kernels(), "|")+", or "+core.KernelAuto+" to pick from graph features (default: static policy)")
		top       = flag.Int("top", 10, "how many central vertices to print")
		pathQuery = flag.String("path", "", "print a shortest path between two original vertex ids, e.g. -path 17,4025")
		maxMem    = flag.Uint64("maxmem-mb", 8192, "distance-matrix memory bound in MiB")
		trace     = flag.String("trace", "", "record the solve and write a Chrome trace_event JSON (load in Perfetto) to this path")
		metrics   = flag.Bool("metrics", false, "record the solve and print its work/scheduler counters as JSON")
	)
	flag.Parse()
	if lf.Path == "" {
		flag.Usage()
		os.Exit(2)
	}

	alg, err := core.ParseAlgorithm(*algorithm)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	loaded, err := lf.Load()
	if err != nil {
		fatal(err)
	}
	g, labels := loaded.Graph, loaded.Labels
	fmt.Printf("loaded %v in %s\n", g, time.Since(start).Round(time.Millisecond))

	if need := parapsp.EstimateMatrixBytes(g.N()); need > *maxMem<<20 {
		fatal(fmt.Errorf("distance matrix needs %d MiB, bound is %d MiB (raise -maxmem-mb)", need>>20, *maxMem))
	}

	var rec *obs.Recorder
	if *trace != "" || *metrics {
		w := *workers
		if w < 1 {
			w = 1
		}
		rec = obs.New(w)
	}
	res, err := parapsp.SolveWith(g, alg, core.Options{
		Workers:     *workers,
		Kernel:      *kernelSel,
		MaxMemBytes: *maxMem << 20,
		TrackPaths:  *pathQuery != "",
		Obs:         rec,
	})
	if err != nil {
		fatal(err)
	}
	if rec != nil {
		rec.Stop()
		if *trace != "" {
			if err := writeTrace(*trace, rec); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "wrote trace to", *trace)
		}
		if *metrics {
			if err := rec.Metrics().WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("APSP (%s, kernel %s, %d workers): ordering %s + sssp %s = %s\n",
		res.Algorithm, res.Kernel, res.Workers,
		res.OrderingTime.Round(time.Microsecond),
		res.SSSPTime.Round(time.Microsecond),
		res.Total().Round(time.Microsecond))

	D := res.D
	fmt.Printf("diameter: %s\n", distString(parapsp.Diameter(D)))
	fmt.Printf("radius:   %s\n", distString(parapsp.Radius(D)))
	fmt.Printf("average path length: %.4f\n", parapsp.AveragePathLength(D))

	label := func(v int) int64 {
		if labels != nil {
			return labels[v]
		}
		return int64(v)
	}
	clo := parapsp.Closeness(D)
	fmt.Printf("top %d by closeness centrality:\n", *top)
	for rank, v := range parapsp.TopK(clo, *top) {
		fmt.Printf("  %2d. vertex %-12d closeness=%.5f degree=%d\n",
			rank+1, label(v), clo[v], g.OutDegree(int32(v)))
	}

	if *pathQuery != "" {
		if err := printPath(*pathQuery, g, res, labels); err != nil {
			fatal(err)
		}
	}
}

// printPath resolves a "u,v" query in original labels, reconstructs a
// shortest path, and prints it back in original labels.
func printPath(query string, g *parapsp.Graph, res *parapsp.Result, labels []int64) error {
	var u, v int64
	if _, err := fmt.Sscanf(query, "%d,%d", &u, &v); err != nil {
		return fmt.Errorf("bad -path %q (want \"u,v\"): %v", query, err)
	}
	find := func(l int64) (int32, error) {
		if labels == nil {
			if l < 0 || l >= int64(g.N()) {
				return 0, fmt.Errorf("vertex %d out of range", l)
			}
			return int32(l), nil
		}
		for id, x := range labels {
			if x == l {
				return int32(id), nil
			}
		}
		return 0, fmt.Errorf("vertex %d not in graph", l)
	}
	us, err := find(u)
	if err != nil {
		return err
	}
	vs, err := find(v)
	if err != nil {
		return err
	}
	path := res.Next.Path(us, vs)
	if path == nil {
		fmt.Printf("no path %d -> %d\n", u, v)
		return nil
	}
	fmt.Printf("shortest path %d -> %d (distance %s, %d hops):\n  ", u, v,
		distString(res.D.At(int(us), int(vs))), len(path)-1)
	for i, x := range path {
		if i > 0 {
			fmt.Print(" -> ")
		}
		if labels != nil {
			fmt.Print(labels[x])
		} else {
			fmt.Print(x)
		}
	}
	fmt.Println()
	return nil
}

// writeTrace dumps the recorder's merged events as a Chrome trace file.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func distString(d parapsp.Dist) string {
	if d == parapsp.Inf {
		return "inf"
	}
	return fmt.Sprint(uint32(d))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apsp:", err)
	os.Exit(1)
}
