// Command parapspd is the long-running distance-query daemon: it loads a
// graph (or generates a synthetic one), builds the landmark oracle, and
// answers distance/path queries over HTTP from a tiered distance store —
// a hot LRU of uncompressed rows, a warm tier of delta-compressed frames,
// and an optional cold tier spilled to disk — backed by the subset solver.
//
// Usage:
//
//	parapspd -graph social.txt.gz -undirected -addr :8080 -workers 4 &
//	curl 'localhost:8080/dist?u=3&v=17'
//	curl 'localhost:8080/dist?u=3&v=17&tol=0.5'     # approximate ok
//	curl 'localhost:8080/path?u=3&v=17'
//	curl -d '{"queries":[{"u":1,"v":2},{"u":1,"v":9}]}' localhost:8080/batch
//	curl -d '{"op":"insert","u":3,"v":17,"w":2}' localhost:8080/edge
//	curl 'localhost:8080/metrics'
//
// The graph is mutable while serving: POST /edge applies one edge
// insert/delete/reweight and publishes a new immutable snapshot without
// blocking readers; every response carries the answering snapshot's
// version in X-Parapsp-Graph-Version.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests complete, background
// refinements finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/gen"
	"parapsp/internal/gio"
	"parapsp/internal/graph"
	"parapsp/internal/serve"
)

func main() {
	var lf gio.LoadFlags
	lf.Register(flag.CommandLine, "graph")
	var (
		genN         = flag.Int("gen", 0, "instead of -graph: serve a synthetic Barabasi-Albert graph with this many vertices")
		kernelSel    = flag.String("kernel", "", "subset-solver SSSP kernel: "+strings.Join(core.Kernels(), "|")+", or "+core.KernelAuto+" to pick per solve from graph features (default: static policy)")
		addr         = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		workers      = flag.Int("workers", 1, "solver workers per subset solve")
		cacheRows    = flag.Int("cache-rows", 0, "deprecated alias for -cache-bytes: hot-tier capacity in rows (4*n bytes per row; 0 lets -cache-bytes govern, both 0 defaults to 256 rows)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "hot-tier (T1) byte budget for uncompressed rows (0: derive from -cache-rows)")
		warmBytes    = flag.Int64("warm-bytes", 0, "warm-tier (T2) byte budget for delta-compressed rows (0: 4x the hot budget, negative disables)")
		spillBytes   = flag.Int64("spill-bytes", 0, "cold-tier (T3) byte budget for frames spilled to disk (0 disables; requires -spill-dir)")
		spillDir     = flag.String("spill-dir", "", "directory of the cold-tier arena file (reopened on restart to warm-start the tier)")
		oracleFile   = flag.String("oracle-file", "", "persist the landmark oracle here: load if it matches the graph, else build and save")
		landmarks    = flag.Int("landmarks", 16, "oracle landmarks (negative disables approximate answers)")
		maxInflight  = flag.Int("max-inflight", 64, "admitted concurrent queries before 429")
		beShare      = flag.Float64("besteffort-share", 0, "fraction of -max-inflight best-effort requests may occupy (0: default 0.75; the rest is the premium reserve)")
		quotaRPS     = flag.Float64("quota-rps", 0, "per-client token-bucket refill rate in requests/second (0 disables quotas)")
		quotaBurst   = flag.Int("quota-burst", 0, "per-client token-bucket depth (0: ceil of -quota-rps)")
		tierHeader   = flag.String("tier-header", "", "request header carrying the SLO tier label, premium|besteffort (default X-Parapsp-Tier)")
		maxBatch     = flag.Int("max-batch", 256, "largest accepted /batch request")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound after SIGTERM")
		seed         = flag.Int64("seed", 42, "random seed for -gen")
		shardID      = flag.String("shard-id", "", "identity label reported in /healthz when this daemon is one shard of a parapsprouter cluster")
	)
	flag.Parse()
	if (lf.Path == "") == (*genN == 0) {
		fmt.Fprintln(os.Stderr, "parapspd: exactly one of -graph or -gen is required")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var g *graph.Graph
	var err error
	if *genN > 0 {
		g, err = gen.BarabasiAlbert(*genN, 4, *seed, gen.Weighting{})
	} else {
		var loaded *gio.Result
		loaded, err = lf.Load()
		if loaded != nil {
			g = loaded.Graph
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parapspd: loaded %v in %s\n", g, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	s, err := serve.New(g, serve.Config{
		Workers:        *workers,
		Kernel:         *kernelSel,
		CacheRows:      *cacheRows,
		CacheBytes:     *cacheBytes,
		WarmBytes:      *warmBytes,
		SpillBytes:     *spillBytes,
		SpillDir:       *spillDir,
		OraclePath:     *oracleFile,
		Landmarks:       *landmarks,
		MaxInflight:     *maxInflight,
		BestEffortShare: *beShare,
		QuotaRPS:        *quotaRPS,
		QuotaBurst:      *quotaBurst,
		TierHeader:      *tierHeader,
		MaxBatch:        *maxBatch,
		RequestTimeout:  *timeout,
		ShardID:         *shardID,
	})
	if err != nil {
		fatal(err)
	}
	if o := s.Oracle(); o != nil {
		fmt.Printf("parapspd: built %v in %s\n", o, time.Since(start).Round(time.Millisecond))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parapspd: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()
	select {
	case err := <-errCh:
		if err != nil {
			fatal(err)
		}
		return
	case <-ctx.Done():
	}

	fmt.Println("parapspd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	if err := <-errCh; err != nil {
		fatal(err)
	}
	snap := s.Metrics().Snapshot()
	fmt.Printf("parapspd: drained cleanly (requests=%d cache hits=%d misses=%d evictions=%d)\n",
		snap["serve.requests"], snap["serve.cache.hits"], snap["serve.cache.misses"],
		snap["serve.cache.evictions"])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parapspd:", err)
	os.Exit(1)
}
