// Command parapsprouter is the stateless cluster front end for a set of
// parapspd shards: it owns shard membership (consistent hashing on source
// id), fans /dist, /path and /batch requests out to the owning shards,
// merges the answers, and routes around failures with health probes,
// hedged requests, and bounded retries.
//
// Usage:
//
//	parapspd -gen 20000 -seed 7 -addr :8081 -shard-id s0 &
//	parapspd -gen 20000 -seed 7 -addr :8082 -shard-id s1 &
//	parapsprouter -shards s0=127.0.0.1:8081,s1=127.0.0.1:8082 -addr :8080 &
//	curl 'localhost:8080/dist?u=3&v=17'
//
// Every shard must serve the same graph (the router cross-checks the
// vertex count from /healthz and refuses mismatched replicas); sharding
// partitions the *source* space, so ownership decides which replica's row
// cache warms, while any surviving replica can still answer any query
// exactly during failover. SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parapsp/internal/cluster"
)

func main() {
	var (
		shards       = flag.String("shards", "", "comma-separated shard list, entries id=host:port (or bare host:port for auto ids)")
		addr         = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		probeEvery   = flag.Duration("probe-interval", 250*time.Millisecond, "shard health-probe period")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "one probe's round-trip bound")
		hedgeAfter   = flag.Duration("hedge-after", 0, "fixed hedge delay before trying the next owner (0 = adaptive: owner's p90 latency)")
		maxAttempts  = flag.Int("max-attempts", 3, "shards tried per subrequest (first + hedges + retries)")
		maxBatch     = flag.Int("max-batch", 256, "largest accepted /batch request")
		maxInflight  = flag.Int("max-inflight", 256, "admitted concurrent requests at the router edge before 429")
		beShare      = flag.Float64("besteffort-share", 0, "fraction of -max-inflight best-effort requests may occupy (0: default 0.75; the rest is the premium reserve)")
		quotaRPS     = flag.Float64("quota-rps", 0, "per-client token-bucket refill rate at the router edge in requests/second (0 disables router-side quotas)")
		quotaBurst   = flag.Int("quota-burst", 0, "per-client token-bucket depth (0: ceil of -quota-rps)")
		tierHeader   = flag.String("tier-header", "", "request header carrying the SLO tier label, premium|besteffort (default X-Parapsp-Tier; always forwarded canonically to shards)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound after SIGTERM")
	)
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "parapsprouter: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	membership, err := cluster.ParseShards(*shards)
	if err != nil {
		fatal(err)
	}
	r, err := cluster.New(cluster.Config{
		Shards:          membership,
		ProbeInterval:   *probeEvery,
		ProbeTimeout:    *probeTimeout,
		HedgeAfter:      *hedgeAfter,
		MaxAttempts:     *maxAttempts,
		MaxBatch:        *maxBatch,
		MaxInflight:     *maxInflight,
		BestEffortShare: *beShare,
		QuotaRPS:        *quotaRPS,
		QuotaBurst:      *quotaBurst,
		TierHeader:      *tierHeader,
		RequestTimeout:  *timeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parapsprouter: routing for %d shards\n", len(membership))
	r.Start()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parapsprouter: listening on %s\n", l.Addr())

	hs := &http.Server{Handler: r.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()
	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
		return
	case <-ctx.Done():
	}

	fmt.Println("parapsprouter: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	r.Close()
	snap := r.Metrics().Snapshot()
	fmt.Printf("parapsprouter: drained cleanly (requests=%d routed=%d merged=%d hedges=%d failed=%d unavailable=%d)\n",
		snap["cluster.requests"], snap["cluster.routed"], snap["cluster.merged"],
		snap["cluster.hedges"], snap["cluster.failed"], snap["cluster.unavailable"])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parapsprouter:", err)
	os.Exit(1)
}
