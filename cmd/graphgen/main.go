// Command graphgen writes synthetic graphs to edge-list files: the
// random-graph families of the paper's background (Erdős–Rényi,
// Barabási–Albert, Watts–Strogatz, R-MAT) and scaled stand-ins for its
// SNAP/KONECT datasets.
//
// Usage:
//
//	graphgen -model ba -n 10000 -m 4 -out ba.txt
//	graphgen -model er -n 10000 -m 40000 -out er.txt.gz
//	graphgen -model ws -n 10000 -k 6 -beta 0.1 -out ws.txt
//	graphgen -model rmat -scale-bits 14 -m 100000 -out rmat.txt
//	graphgen -dataset WordNet -dataset-scale 0.05 -out wordnet-5pct.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parapsp/internal/datasets"
	"parapsp/internal/gen"
	"parapsp/internal/gio"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

func main() {
	var (
		model     = flag.String("model", "", "ba|er|gnp|ws|rmat|powerlaw (or use -dataset)")
		dataset   = flag.String("dataset", "", "paper dataset name to synthesize a stand-in for")
		dscale    = flag.Float64("dataset-scale", 0.05, "stand-in scale factor in (0,1]")
		n         = flag.Int("n", 1000, "vertices (ba/er/gnp/ws/powerlaw)")
		m         = flag.Int("m", 3000, "edges (er/rmat) or per-vertex attachments (ba)")
		k         = flag.Int("k", 4, "ring-lattice degree (ws, even)")
		beta      = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		p         = flag.Float64("p", 0.01, "edge probability (gnp)")
		gamma     = flag.Float64("gamma", 2.5, "power-law exponent (powerlaw)")
		minDeg    = flag.Int("mindeg", 2, "minimum degree (powerlaw)")
		scaleBits = flag.Uint("scale-bits", 12, "log2 vertices (rmat)")
		directed  = flag.Bool("directed", false, "generate a directed graph where supported")
		seed      = flag.Int64("seed", 1, "random seed")
		wmin      = flag.Uint("wmin", 0, "minimum edge weight (0 = unweighted)")
		wmax      = flag.Uint("wmax", 0, "maximum edge weight")
		out       = flag.String("out", "", "output edge-list path (required; .gz compresses)")
		verify    = flag.Bool("verify", false, "reload the written file and check it round-trips")
	)
	flag.Parse()
	if *out == "" || (*model == "" && *dataset == "") {
		flag.Usage()
		os.Exit(2)
	}

	w := gen.Weighting{Min: matrix.Dist(*wmin), Max: matrix.Dist(*wmax)}
	var g *graph.Graph
	var err error
	start := time.Now()
	switch {
	case *dataset != "":
		g, _, err = datasets.Synthesize(*dataset, *dscale, *seed)
	default:
		switch *model {
		case "ba":
			g, err = gen.BarabasiAlbert(*n, *m, *seed, w)
		case "er":
			g, err = gen.ErdosRenyiGNM(*n, *m, !*directed, *seed, w)
		case "gnp":
			g, err = gen.ErdosRenyiGNP(*n, *p, !*directed, *seed, w)
		case "ws":
			g, err = gen.WattsStrogatz(*n, *k, *beta, *seed, w)
		case "rmat":
			g, err = gen.RMAT(*scaleBits, *m, 0.57, 0.19, 0.19, 0.05, !*directed, *seed, w)
		case "powerlaw":
			g, err = gen.PowerLawConfiguration(*n, *gamma, *minDeg, !*directed, *seed, w)
		default:
			err = fmt.Errorf("unknown model %q", *model)
		}
	}
	if err != nil {
		fatal(err)
	}
	if err := gio.WriteFile(*out, g, nil); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %v to %s in %s\n", g, *out, time.Since(start).Round(time.Millisecond))

	if *verify {
		loaded, err := gio.Load(*out, "edgelist", gio.Options{Undirected: g.Undirected(), Weighted: g.Weighted()})
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		if loaded.Graph.N() != g.N() || loaded.Graph.NumArcs() != g.NumArcs() {
			fatal(fmt.Errorf("verify: reloaded %v, wrote %v", loaded.Graph, g))
		}
		fmt.Printf("verified round trip: %v\n", loaded.Graph)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
