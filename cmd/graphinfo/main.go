// Command graphinfo profiles a graph without the O(n^2) APSP matrix:
// size, degree distribution, components, clustering, k-core decomposition,
// double-sweep diameter bounds, and PageRank — the cheap complex-network
// statistics used to size an APSP run before committing its memory.
//
// Usage:
//
//	graphinfo -in graph.txt.gz -undirected
//	graphinfo -in adj.mtx -format mm
//	graphinfo -in mesh.graph -format metis -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"parapsp"
	"parapsp/internal/analysis"
	"parapsp/internal/gio"
)

func main() {
	var lf gio.LoadFlags
	lf.Register(flag.CommandLine, "in")
	var (
		workers = flag.Int("workers", 4, "parallel workers for clustering/PageRank")
		top     = flag.Int("top", 5, "entries to show in rankings")
	)
	flag.Parse()
	if lf.Path == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	loaded, err := lf.Load()
	if err != nil {
		fatal(err)
	}
	g := loaded.Graph
	fmt.Printf("loaded %v in %s\n\n", g, time.Since(start).Round(time.Millisecond))

	st := analysis.Degrees(g)
	fmt.Printf("degrees: min=%d max=%d mean=%.2f\n", st.Min, st.Max, st.Mean)

	hist := g.DegreeHistogram()
	fmt.Print("degree distribution (log-binned): ")
	for lo := 1; lo < len(hist); lo *= 2 {
		hi := min(lo*2-1, len(hist)-1)
		var c int64
		for d := lo; d <= hi; d++ {
			c += hist[d]
		}
		if c > 0 {
			fmt.Printf("[%d-%d]:%d ", lo, hi, c)
		}
	}
	fmt.Println()

	comp := parapsp.Components(g)
	sizes := analysis.ComponentSizes(comp)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("weak components: %d (largest %d)\n", len(sizes), sizes[0])
	if !g.Undirected() {
		scc := analysis.SCC(g)
		sccSizes := analysis.ComponentSizes(scc)
		sort.Sort(sort.Reverse(sort.IntSlice(sccSizes)))
		fmt.Printf("strong components: %d (largest %d)\n", len(sccSizes), sccSizes[0])
	}

	if !g.Weighted() {
		lo, hi := parapsp.DiameterBounds(g, 4)
		fmt.Printf("diameter bounds (double sweep): [%d, %d]\n", lo, hi)
	}
	fmt.Printf("clustering coefficient: %.4f\n", parapsp.GlobalClustering(g, *workers))
	fmt.Printf("degeneracy (max k-core): %d\n", parapsp.Degeneracy(g))

	pr := parapsp.PageRank(g, 0.85, 1e-9, 100, *workers)
	fmt.Printf("top %d by PageRank:\n", *top)
	for rank, v := range parapsp.TopK(pr, *top) {
		fmt.Printf("  %2d. vertex %-10d rank=%.6f degree=%d\n", rank+1, v, pr[v], g.OutDegree(int32(v)))
	}

	need := parapsp.EstimateMatrixBytes(g.N())
	fmt.Printf("\nfull APSP would need %d MiB for the distance matrix\n", need>>20)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphinfo:", err)
	os.Exit(1)
}
