package parapsp_test

// Godoc examples for the public API. Each runs as a test; the Output
// comments pin the behaviour.

import (
	"fmt"

	"parapsp"
)

// ExampleSolve computes exact APSP on a small explicit graph with the
// paper's ParAPSP algorithm.
func ExampleSolve() {
	// A weighted diamond: two routes from 0 to 3.
	g, err := parapsp.FromEdges(4, false, []parapsp.Edge{
		{From: 0, To: 1, W: 1},
		{From: 1, To: 3, W: 1},
		{From: 0, To: 2, W: 5},
		{From: 2, To: 3, W: 5},
	})
	if err != nil {
		panic(err)
	}
	res, err := parapsp.Solve(g, parapsp.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("distance 0->3:", res.D.At(0, 3))
	fmt.Println("unreachable 3->0:", res.D.At(3, 0) == parapsp.Inf)
	// Output:
	// distance 0->3: 2
	// unreachable 3->0: true
}

// ExampleSolve_paths reconstructs a shortest path with TrackPaths.
func ExampleSolve_paths() {
	g, err := parapsp.FromEdges(4, true, []parapsp.Edge{
		{From: 0, To: 1, W: 1},
		{From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1},
	})
	if err != nil {
		panic(err)
	}
	res, err := parapsp.Solve(g, parapsp.Options{TrackPaths: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Next.Path(0, 3))
	// Output:
	// [0 1 2 3]
}

// ExampleCountingSortDesc sorts record indices by bounded integer keys in
// O(n + maxKey), the general-purpose face of the paper's ordering work.
func ExampleCountingSortDesc() {
	keys := []int{3, 9, 3, 1}
	perm, err := parapsp.CountingSortDesc(keys)
	if err != nil {
		panic(err)
	}
	for _, i := range perm {
		fmt.Print(keys[i], " ")
	}
	// Output:
	// 9 3 3 1
}

// ExampleDiameter derives graph statistics from the distance matrix.
func ExampleDiameter() {
	// A 5-path: diameter 4, radius 2.
	b := parapsp.NewBuilder(5, true)
	for i := int32(0); i < 4; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := parapsp.Solve(g, parapsp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(parapsp.Diameter(res.D), parapsp.Radius(res.D))
	// Output:
	// 4 2
}

// ExampleSolveSubset computes a handful of rows without O(n^2) memory.
func ExampleSolveSubset() {
	g, err := parapsp.GenerateBarabasiAlbert(1000, 3, 7)
	if err != nil {
		panic(err)
	}
	rows, err := parapsp.SolveSubset(g, []int32{0, 500}, parapsp.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("rows solved:", len(rows.Sources))
	fmt.Println("row memory under 1 MB:", rows.MemBytes() < 1<<20)
	// Output:
	// rows solved: 2
	// row memory under 1 MB: true
}
