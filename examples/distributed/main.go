// Distributed-memory prototype: the paper's future work ("extend the
// ParAPSP algorithm on distributed-memory parallel environments"),
// simulated as message-passing nodes on this machine. The example sweeps
// the cluster size and shows the trade the paper's authors would face:
// every completed row must be broadcast, so communication volume grows
// linearly with the node count while each node's memory share shrinks.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"parapsp"
)

func main() {
	g, err := parapsp.GenerateBarabasiAlbert(2500, 4, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// Shared-memory reference solution.
	ref, err := parapsp.Solve(g, parapsp.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-memory ParAPSP: %v\n\n", ref.Total())

	fmt.Println("nodes  time      messages   MB sent   remote-folds  exact")
	for _, nodes := range []int{1, 2, 4, 8} {
		start := time.Now()
		D, st, err := parapsp.SolveDistributed(g, nodes)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%5d  %-8v  %8d  %8.1f  %12d  %v\n",
			nodes, elapsed.Round(time.Millisecond), st.Messages,
			float64(st.Bytes)/(1<<20), st.RemoteFolds, D.Equal(ref.D))
	}

	fmt.Println("\nEach node holds n/nodes rows plus received rows; a real MPI port")
	fmt.Println("would trade the broadcast volume above against that memory split.")
}
