// Quickstart: build a small scale-free network, solve APSP with the
// paper's ParAPSP algorithm, and read a few distances and statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parapsp"
)

func main() {
	// A 2,000-vertex Barabási–Albert graph: the scale-free family the
	// paper's optimized ordering is designed for.
	g, err := parapsp.GenerateBarabasiAlbert(2000, 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// Exact all-pairs shortest paths. The zero Options run the paper's
	// ParAPSP (MultiLists ordering + dynamic-cyclic modified Dijkstra);
	// Workers is the thread count of the paper's sweeps.
	res, err := parapsp.Solve(g, parapsp.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved with %s: ordering %v + sssp %v\n",
		res.Algorithm, res.OrderingTime, res.SSSPTime)

	// The distance matrix answers point queries...
	fmt.Printf("distance 0 -> 1999: %d hops\n", res.D.At(0, 1999))

	// ...and global statistics.
	fmt.Println("diameter:           ", parapsp.Diameter(res.D))
	fmt.Println("radius:             ", parapsp.Radius(res.D))
	fmt.Printf("average path length: %.3f (small world!)\n",
		parapsp.AveragePathLength(res.D))

	// Compare with the sequential optimized algorithm: same solution.
	seq, err := parapsp.Solve(g, parapsp.Options{Algorithm: parapsp.AlgSeqOptimized})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequential solution identical:", seq.D.Equal(res.D))
}
