// General-purpose parallel ordering: the paper notes that its MultiLists
// procedure "can be used in general parallel sorting problems when keys
// are in limited ranges". This example sorts a histogram-style workload —
// a million records keyed by small integers — three ways and compares.
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"parapsp"
)

func main() {
	const n = 1_000_000
	const maxKey = 4096

	// Power-law keys, like packet sizes or term frequencies.
	rng := rand.New(rand.NewSource(99))
	keys := make([]int, n)
	for i := range keys {
		u := rng.Float64()
		keys[i] = int(float64(maxKey) * u * u * u)
	}

	// 1. Standard library comparison sort on an index permutation.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	start := time.Now()
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] > keys[idx[b]] })
	tSort := time.Since(start)

	// 2. Sequential counting sort (O(n + maxKey)).
	start = time.Now()
	seq, err := parapsp.CountingSortDesc(keys)
	if err != nil {
		log.Fatal(err)
	}
	tSeq := time.Since(start)

	// 3. The paper's MultiLists: exact, lock-free, parallel.
	start = time.Now()
	par, err := parapsp.ParallelCountingSortDesc(keys, 8)
	if err != nil {
		log.Fatal(err)
	}
	tPar := time.Since(start)

	fmt.Printf("%d records, keys in [0,%d]\n", n, maxKey)
	fmt.Printf("sort.SliceStable:           %v\n", tSort)
	fmt.Printf("CountingSortDesc:           %v (%.1fx vs stdlib)\n", tSeq, float64(tSort)/float64(tSeq))
	fmt.Printf("ParallelCountingSortDesc:   %v (%.1fx vs stdlib)\n", tPar, float64(tSort)/float64(tPar))

	// All three outputs carry the same non-increasing key sequence.
	for i := 0; i < n; i++ {
		if keys[seq[i]] != keys[idx[i]] || keys[par[i]] != keys[idx[i]] {
			log.Fatalf("key sequences diverge at %d", i)
		}
	}
	fmt.Println("all three orderings agree on the key sequence ✔")

	// The same machinery orders graph vertices by degree — the use inside
	// ParAPSP.
	g, err := parapsp.GenerateBarabasiAlbert(100_000, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	order := parapsp.OrderByDegreeDesc(g, 8)
	fmt.Printf("\ndegree-ordered %d vertices in %v; hottest degree = %d\n",
		len(order), time.Since(start), g.OutDegree(order[0]))
}
