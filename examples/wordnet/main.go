// Semantic-distance queries on a WordNet-like lexical graph — the
// dataset the paper uses throughout Section 4. Vertices are word senses,
// edges are lexical relations; the shortest-path distance between two
// senses is the classic path-similarity measure in computational
// linguistics, and APSP precomputes all of them at once.
//
// The graph here is the repository's deterministic WordNet stand-in (same
// vertex/edge shape at 2% scale); drop a real KONECT WordNet edge list
// into LoadEdgeList to run the original.
//
//	go run ./examples/wordnet
package main

import (
	"fmt"
	"log"

	"parapsp"
	"parapsp/internal/datasets"
)

func main() {
	g, info, err := datasets.Synthesize("WordNet", 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WordNet stand-in at 2%% scale: %v (original: %d vertices, %d edges)\n",
		g, info.Vertices, info.Edges)

	res, err := parapsp.Solve(g, parapsp.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-pairs semantic distances in %v\n\n", res.Total())

	// Path similarity: 1 / (1 + shortest-path length), the standard
	// WordNet measure. With APSP precomputed, each query is O(1).
	similarity := func(a, b int) float64 {
		d := res.D.At(a, b)
		if d == parapsp.Inf {
			return 0
		}
		return 1 / (1 + float64(d))
	}

	queries := [][2]int{{0, 1}, {10, 500}, {3, 2000}, {7, 7}}
	fmt.Println("sense A  sense B  hops  path-similarity")
	for _, q := range queries {
		d := res.D.At(q[0], q[1])
		hops := "unreachable"
		if d != parapsp.Inf {
			hops = fmt.Sprint(d)
		}
		fmt.Printf("%7d  %7d  %4s  %.4f\n", q[0], q[1], hops, similarity(q[0], q[1]))
	}

	// Lexical statistics: how tightly clustered is the vocabulary?
	ecc := parapsp.Eccentricities(res.D)
	central := parapsp.TopK(negate(ecc), 5)
	fmt.Printf("\ndiameter %d, radius %d\n", parapsp.Diameter(res.D), parapsp.Radius(res.D))
	fmt.Println("most central senses (lowest eccentricity):")
	for _, v := range central {
		fmt.Printf("  sense %-6d eccentricity %d, degree %d\n", v, ecc[v], g.OutDegree(int32(v)))
	}
}

// negate turns eccentricities into "higher is better" scores for TopK.
func negate(ds []parapsp.Dist) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		if d == 0 {
			out[i] = -1e18 // isolated senses are not central
			continue
		}
		out[i] = -float64(d)
	}
	return out
}
