// Social-network analysis: the workload the paper's introduction leads
// with. Builds a synthetic social graph (scale-free with local events, so
// communities of friends-of-friends form), computes exact APSP in
// parallel, and ranks users by closeness and harmonic centrality — the
// "who can reach everyone fastest" question behind influencer detection
// and information-diffusion studies.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"

	"parapsp"
	"parapsp/internal/analysis"
	"parapsp/internal/gen"
)

func main() {
	// Albert–Barabási local-events model: growth + extra in-community
	// links + rewiring, a closer match to real social graphs than pure
	// preferential attachment.
	g, err := gen.ABLocalEvents(3000, 3, 0.25, 0.15, 7, gen.Weighting{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("social graph:", g)

	comp := parapsp.Components(g)
	sizes := analysis.ComponentSizes(comp)
	fmt.Printf("weakly connected components: %d (largest %d vertices)\n",
		len(sizes), maxInt(sizes))

	res, err := parapsp.Solve(g, parapsp.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("APSP in %v (%s, %d workers)\n\n", res.Total(), res.Algorithm, res.Workers)

	clo := parapsp.Closeness(res.D)
	har := parapsp.Harmonic(res.D)
	deg := g.Degrees()

	fmt.Println("rank  user  closeness  harmonic  degree")
	for rank, v := range parapsp.TopK(clo, 10) {
		fmt.Printf("%4d  %4d  %9.5f  %8.1f  %6d\n", rank+1, v, clo[v], har[v], deg[v])
	}

	// The six-degrees-of-separation check, plus the small-world signature:
	// short average separation together with high clustering.
	fmt.Printf("\ndiameter %d, average separation %.2f, clustering %.4f\n",
		parapsp.Diameter(res.D), parapsp.AveragePathLength(res.D),
		parapsp.GlobalClustering(g, 8))

	// Degree is a local proxy for centrality; closeness is global. Show
	// where they disagree: the best-connected non-hub.
	hub := parapsp.TopK(clo, 1)[0]
	fmt.Printf("most central user: %d (degree %d, closeness %.5f)\n", hub, deg[hub], clo[hub])
}

func maxInt(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
