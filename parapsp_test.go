package parapsp

import (
	"bytes"
	"compress/gzip"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := GenerateBarabasiAlbert(300, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgParAPSP {
		t.Errorf("default algorithm = %v, want ParAPSP", res.Algorithm)
	}
	if res.D.N() != 300 {
		t.Fatalf("matrix size = %d", res.D.N())
	}
	if d := Diameter(res.D); d < 2 || d > 20 {
		t.Errorf("BA(300,3) diameter = %d; implausible", d)
	}
	if r := Radius(res.D); r == 0 || r > Diameter(res.D) {
		t.Errorf("radius = %d, diameter = %d", r, Diameter(res.D))
	}
	if apl := AveragePathLength(res.D); math.IsNaN(apl) || apl <= 1 {
		t.Errorf("average path length = %g", apl)
	}
}

func TestExplicitAlgorithms(t *testing.T) {
	g, err := GenerateBarabasiAlbert(120, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgSeqBasic, AlgSeqOptimized, AlgSeqAdaptive, AlgParAlg1, AlgParAlg2, AlgParAPSP} {
		res, err := Solve(g, Options{Algorithm: alg, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.D.Equal(ref.D) {
			t.Errorf("%v solution differs", alg)
		}
	}
}

func TestOrderingOverride(t *testing.T) {
	g, err := GenerateBarabasiAlbert(150, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := Solve(g, Options{})
	for _, proc := range []OrderingProcedure{OrderSeqBucket, OrderParBuckets, OrderParMax, OrderMultiLists} {
		res, err := Solve(g, Options{Ordering: proc, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		if !res.D.Equal(ref.D) {
			t.Errorf("%v solution differs", proc)
		}
	}
}

func TestBuilderAndEdges(t *testing.T) {
	b := NewBuilder(3, true)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWeighted(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.D.At(0, 2) != 6 {
		t.Errorf("D[0][2] = %d, want 6", res.D.At(0, 2))
	}
	g2, err := FromEdges(2, false, []Edge{{From: 0, To: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := Solve(g2, Options{})
	if res2.D.At(0, 1) != 2 || res2.D.At(1, 0) != Inf {
		t.Errorf("directed distances wrong: %d %d", res2.D.At(0, 1), res2.D.At(1, 0))
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := GenerateErdosRenyi(40, 100, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	g2, labels, err := ReadEdgeList(strings.NewReader(buf.String()), true, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() || len(labels) != g2.N() {
		t.Errorf("round trip: arcs %d -> %d", g.NumArcs(), g2.NumArcs())
	}
}

func TestGenerators(t *testing.T) {
	ws, err := GenerateWattsStrogatz(100, 4, 0.1, 5)
	if err != nil || ws.N() != 100 {
		t.Fatalf("WS: %v", err)
	}
	er, err := GenerateErdosRenyi(50, 80, false, 6)
	if err != nil || er.N() != 50 {
		t.Fatalf("ER: %v", err)
	}
}

func TestOrderingAPI(t *testing.T) {
	g, err := GenerateBarabasiAlbert(200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	ord := OrderByDegreeDesc(g, 4)
	if len(ord) != 200 {
		t.Fatalf("order length = %d", len(ord))
	}
	for i := 1; i < len(ord); i++ {
		if g.OutDegree(ord[i-1]) < g.OutDegree(ord[i]) {
			t.Fatal("order not degree-descending")
		}
	}
	keys := []int{5, 1, 3, 3, 9}
	perm, err := CountingSortDesc(keys)
	if err != nil {
		t.Fatal(err)
	}
	if keys[perm[0]] != 9 || keys[perm[4]] != 1 {
		t.Errorf("CountingSortDesc = %v", perm)
	}
	pperm, err := ParallelCountingSortDesc(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if keys[pperm[i]] != keys[perm[i]] {
			t.Error("parallel sort key sequence differs")
		}
	}
}

func TestCentralityAPIs(t *testing.T) {
	// Star graph: hub is the most central by every measure.
	b := NewBuilder(6, true)
	for i := int32(1); i < 6; i++ {
		if err := b.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := Closeness(res.D)
	h := Harmonic(res.D)
	if TopK(c, 1)[0] != 0 || TopK(h, 1)[0] != 0 {
		t.Error("hub not most central")
	}
	ecc := Eccentricities(res.D)
	if ecc[0] != 1 || ecc[1] != 2 {
		t.Errorf("eccentricities = %v", ecc)
	}
	comp := Components(g)
	for _, cid := range comp {
		if cid != 0 {
			t.Errorf("components = %v", comp)
		}
	}
}

func TestMemoryGuard(t *testing.T) {
	g, err := GenerateBarabasiAlbert(100, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, Options{MaxMemBytes: 10}); err == nil {
		t.Error("memory guard did not trigger")
	}
	if EstimateMatrixBytes(100) != 40000 {
		t.Errorf("EstimateMatrixBytes = %d", EstimateMatrixBytes(100))
	}
}

func TestSolveWithLowLevel(t *testing.T) {
	g, err := GenerateBarabasiAlbert(100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveWith(g, AlgParAlg2, coreOptionsForTest())
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := Solve(g, Options{})
	if !res.D.Equal(ref.D) {
		t.Error("SolveWith solution differs")
	}
}

func TestTrackPathsViaFacade(t *testing.T) {
	g, err := GenerateBarabasiAlbert(150, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Options{Workers: 2, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Next == nil {
		t.Fatal("TrackPaths did not populate Next")
	}
	p := res.Next.Path(0, 149)
	if len(p) == 0 || p[0] != 0 || p[len(p)-1] != 149 {
		t.Fatalf("path = %v", p)
	}
	if Dist(len(p)-1) != res.D.At(0, 149) {
		t.Errorf("path length %d != distance %d", len(p)-1, res.D.At(0, 149))
	}
	if err := res.Next.Verify(g, res.D, 0, 149); err != nil {
		t.Error(err)
	}
}

func TestDistributedViaFacade(t *testing.T) {
	g, err := GenerateBarabasiAlbert(200, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	D, st, err := SolveDistributed(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !D.Equal(ref.D) {
		t.Error("distributed solution differs")
	}
	if st.Messages != int64(g.N())*3 {
		t.Errorf("messages = %d", st.Messages)
	}
}

func TestSCCAndBetweennessViaFacade(t *testing.T) {
	g, err := FromEdges(4, false, []Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 0, W: 1}, {From: 1, To: 2, W: 1}, {From: 2, To: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	scc := StronglyConnectedComponents(g)
	if scc[0] != scc[1] || scc[2] == scc[0] || scc[3] == scc[2] {
		t.Errorf("scc = %v", scc)
	}
	bg, err := GenerateBarabasiAlbert(100, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(bg, 3)
	if len(bc) != 100 {
		t.Fatalf("betweenness len = %d", len(bc))
	}
	any := false
	for _, x := range bc {
		if x > 0 {
			any = true
		}
		if x < 0 {
			t.Fatal("negative betweenness")
		}
	}
	if !any {
		t.Error("all betweenness zero")
	}
}

func TestSolveSubsetViaFacade(t *testing.T) {
	g, err := GenerateBarabasiAlbert(200, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SolveSubset(g, []int32{0, 10, 20}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sub.Sources {
		row := sub.Row(s)
		for v := 0; v < g.N(); v++ {
			if row[v] != full.D.At(int(s), v) {
				t.Fatalf("subset row %d differs at %d", s, v)
			}
		}
	}
}

func TestLargestComponentSubgraph(t *testing.T) {
	// Two components: a triangle {0,1,2} and an edge {3,4}.
	g, err := FromEdges(5, true, []Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}, {From: 2, To: 0, W: 1},
		{From: 3, To: 4, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, names, err := LargestComponentSubgraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("sub = %v", sub)
	}
	for i, orig := range []int32{0, 1, 2} {
		if names[i] != orig {
			t.Errorf("names = %v", names)
		}
	}
	res, err := Solve(sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.D.CountFinite() != 9 {
		t.Errorf("component APSP has unreachable pairs: %d finite", res.D.CountFinite())
	}
	if math.IsNaN(Assortativity(g)) {
		t.Error("assortativity NaN on non-regular graph")
	}
}

func TestOracleViaFacade(t *testing.T) {
	g, err := GenerateBarabasiAlbert(300, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildOracle(g, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 300; u += 37 {
		for v := int32(0); v < 300; v += 41 {
			lo, hi := o.Bounds(u, v)
			d := full.D.At(int(u), int(v))
			if d != Inf && (lo > d || hi < d) {
				t.Fatalf("bounds [%d,%d] exclude %d", lo, hi, d)
			}
		}
	}
}

func TestAnalysisFacadeCoverage(t *testing.T) {
	g, err := GenerateBarabasiAlbert(200, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if gc := GlobalClustering(g, 2); gc <= 0 || gc >= 1 {
		t.Errorf("clustering = %g", gc)
	}
	if lc := LocalClustering(g, 2); len(lc) != 200 {
		t.Errorf("local clustering len = %d", len(lc))
	}
	if kc := KCore(g); len(kc) != 200 {
		t.Errorf("kcore len = %d", len(kc))
	}
	if d := Degeneracy(g); d != 3 {
		t.Errorf("BA(200,3) degeneracy = %d, want 3", d)
	}
	lo, hi := DiameterBounds(g, 3)
	if lo == 0 || hi < lo {
		t.Errorf("diameter bounds = [%d,%d]", lo, hi)
	}
	pr := PageRank(g, 0.85, 1e-9, 50, 2)
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("pagerank sums to %g", sum)
	}
	d := SSSP(g, 0)
	if d[0] != 0 || len(d) != 200 {
		t.Errorf("SSSP row broken")
	}
}

func TestFormatsAndSortsFacade(t *testing.T) {
	g, err := GenerateBarabasiAlbert(60, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	var mm bytes.Buffer
	if err := WriteMatrixMarket(&mm, g); err != nil {
		t.Fatal(err)
	}
	g2, labels, err := ReadMatrixMarket(&mm)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() || len(labels) != g2.N() {
		t.Errorf("MatrixMarket round trip: %v -> %v", g, g2)
	}
	perm, err := ParallelRadixSortDesc([]int{70000, 3, 500, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 || perm[1] != 2 {
		t.Errorf("radix perm = %v", perm)
	}
}

func TestLoadEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	g, err := GenerateErdosRenyi(30, 60, true, 18)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if err := WriteEdgeList(zw, g, nil); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	f.Close()
	g2, _, err := LoadEdgeList(path, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() {
		t.Errorf("file round trip arcs %d -> %d", g.NumArcs(), g2.NumArcs())
	}
	if _, _, err := LoadEdgeList("/no/such/file", true, false); err == nil {
		t.Error("missing file accepted")
	}
}
