package parapsp

// One testing.B benchmark per table and figure of the paper's evaluation,
// wrapping the same code paths as the apspbench experiments (see
// internal/bench and EXPERIMENTS.md). Sizes are container-scale: the
// workloads are the deterministic dataset stand-ins at small scale so the
// full -bench=. sweep completes in minutes.
//
// Naming: Benchmark<ExperimentID>... matches DESIGN.md's per-experiment
// index; sub-benchmarks carry the thread count and variant.

import (
	"fmt"
	"testing"

	"parapsp/internal/analysis"
	"parapsp/internal/baseline"
	"parapsp/internal/core"
	"parapsp/internal/datasets"
	"parapsp/internal/dist"
	"parapsp/internal/graph"
	"parapsp/internal/oracle"
	"parapsp/internal/order"
	"parapsp/internal/sched"
)

var benchThreads = []int{1, 2, 4, 8, 16}

// cached workloads, built once per process.
var benchGraphs = map[string]*graph.Graph{}

func benchGraph(b *testing.B, name string, scale float64) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("%s@%g", name, scale)
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g, _, err := datasets.Synthesize(name, scale, 42)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

func solveBench(b *testing.B, g *graph.Graph, alg core.Algorithm, opts core.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(g, alg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Ordering regenerates Table 1: the selection-sort ordering
// of ParAlg2 vs the ParBuckets ordering, across thread counts.
func BenchmarkTable1Ordering(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.1)
	degrees := g.Degrees()
	for _, proc := range []order.Procedure{order.Selection, order.ParBucketsProc} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", proc, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := order.Run(proc, degrees, order.Config{Workers: p}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig1Schedule regenerates Figure 1: the loop-schedule effect on
// the SSSP phase of ParAlg2 (ca-HepPh workload, fixed selection order).
func BenchmarkFig1Schedule(b *testing.B) {
	g := benchGraph(b, "ca-HepPh", 0.08)
	src := order.SelectionSort(g.Degrees(), 1.0)
	for _, scheme := range []sched.Scheme{sched.Block, sched.StaticCyclic, sched.DynamicCyclic} {
		for _, p := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/threads=%d", scheme, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.SSSPPhase(g, src, p, scheme, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3DegreeHistogram regenerates the data behind Figure 3.
func BenchmarkFig3DegreeHistogram(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.DegreeHistogram()
	}
}

// BenchmarkFig4Ordering regenerates Figure 4: ParBuckets vs ParMax.
func BenchmarkFig4Ordering(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.1)
	degrees := g.Degrees()
	for _, proc := range []order.Procedure{order.ParBucketsProc, order.ParMaxProc} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", proc, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := order.Run(proc, degrees, order.Config{Workers: p}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5SSSPByOrder regenerates Figure 5: the Dijkstra-phase time
// under selection / ParBuckets / ParMax orders.
func BenchmarkFig5SSSPByOrder(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	degrees := g.Degrees()
	orders := map[string][]int32{
		"selection":  order.SelectionSort(degrees, 1.0),
		"parbuckets": order.ParBuckets(degrees, 4, 100),
		"parmax":     order.ParMax(degrees, 4, 0.01),
	}
	for name, src := range orders {
		for _, p := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.SSSPPhase(g, src, p, sched.DynamicCyclic, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6Ordering regenerates Figure 6: ParMax vs MultiLists,
// including the large-graph MultiLists runs of Section 4.3.
func BenchmarkFig6Ordering(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.1)
	degrees := g.Degrees()
	for _, proc := range []order.Procedure{order.ParMaxProc, order.MultiListsProc} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", proc, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := order.Run(proc, degrees, order.Config{Workers: p}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	for _, name := range []string{"soc-Pokec", "soc-LiveJournal1"} {
		bigDeg, _, err := datasets.SynthesizeDegrees(name, 0.05, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{1, 8} {
			b.Run(fmt.Sprintf("multi-lists-large/%s/threads=%d", name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					order.MultiLists(bigDeg, p, 0.1)
				}
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: ParAlg1 vs ParAlg2 on Flickr.
func BenchmarkFig7(b *testing.B) {
	g := benchGraph(b, "Flickr", 0.008)
	for _, alg := range []core.Algorithm{core.ParAlg1, core.ParAlg2} {
		for _, p := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/threads=%d", alg, p), func(b *testing.B) {
				solveBench(b, g, alg, core.Options{Workers: p})
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (and the measurements behind
// Figure 9's speedups): ParAlg1 / ParAlg2 / ParAPSP on WordNet.
func BenchmarkFig8(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	for _, alg := range []core.Algorithm{core.ParAlg1, core.ParAlg2, core.ParAPSP} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", alg, p), func(b *testing.B) {
				solveBench(b, g, alg, core.Options{Workers: p})
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: ParAPSP on every Table 2 dataset.
func BenchmarkFig10(b *testing.B) {
	for _, in := range datasets.Table2() {
		g := benchGraph(b, in.Name, 0.008)
		for _, p := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/threads=%d", in.Name, p), func(b *testing.B) {
				solveBench(b, g, core.ParAPSP, core.Options{Workers: p})
			})
		}
	}
}

// BenchmarkSeqGap regenerates the Section 2/5.2 sequential comparison:
// basic vs optimized vs adaptive.
func BenchmarkSeqGap(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	for _, alg := range []core.Algorithm{core.SeqBasic, core.SeqOptimized, core.SeqAdaptive} {
		b.Run(alg.String(), func(b *testing.B) {
			solveBench(b, g, alg, core.Options{})
		})
	}
}

// BenchmarkBaselines positions the Peng-family algorithms against the
// classic APSP algorithms of Sections 2 and 6.
func BenchmarkBaselines(b *testing.B) {
	g := benchGraph(b, "ca-HepPh", 0.05)
	b.Run("floyd-warshall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.FloydWarshall(g)
		}
	})
	b.Run("repeated-heap-dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.DijkstraAPSP(g)
		}
	})
	b.Run("repeated-spfa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.SPFAAPSP(g)
		}
	})
	b.Run("seq-basic", func(b *testing.B) {
		solveBench(b, g, core.SeqBasic, core.Options{})
	})
	b.Run("seq-optimized", func(b *testing.B) {
		solveBench(b, g, core.SeqOptimized, core.Options{})
	})
}

// BenchmarkAblationQueue measures the queue-dedup ablation.
func BenchmarkAblationQueue(b *testing.B) {
	g := benchGraph(b, "Flickr", 0.008)
	for _, paper := range []bool{false, true} {
		name := "dedup"
		if paper {
			name = "paper-duplicates"
		}
		b.Run(name, func(b *testing.B) {
			solveBench(b, g, core.ParAPSP, core.Options{Workers: 4, PaperQueue: paper})
		})
	}
}

// BenchmarkAblationRowReuse measures the dynamic-programming row-reuse
// ablation — the mechanism the paper credits for hyper-linear speedup.
func BenchmarkAblationRowReuse(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	for _, disable := range []bool{false, true} {
		name := "reuse-on"
		if disable {
			name = "reuse-off"
		}
		b.Run(name, func(b *testing.B) {
			solveBench(b, g, core.ParAPSP, core.Options{Workers: 4, DisableRowReuse: disable})
		})
	}
}

// BenchmarkAblationBucketCount measures order quality vs bucket count
// through the SSSP phase it induces.
func BenchmarkAblationBucketCount(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	degrees := g.Degrees()
	cases := map[string][]int32{
		"buckets-101":  order.ParBuckets(degrees, 4, 100),
		"buckets-1001": order.ParBuckets(degrees, 4, 1000),
		"exact-parmax": order.ParMax(degrees, 4, 0.01),
	}
	for name, src := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SSSPPhase(g, src, 4, sched.DynamicCyclic, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModifiedDijkstraSingleSource isolates one SSSP run — the unit
// of work the parallel loop distributes.
func BenchmarkModifiedDijkstraSingleSource(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.02)
	b.Run("cold-flags", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dist := make([]Dist, g.N())
			baseline.SPFASSSP(g, 0, dist)
		}
	})
}

// BenchmarkMultiListsScaling shows MultiLists' O(n) ordering across input
// sizes (the general-sorting claim).
func BenchmarkMultiListsScaling(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		degrees, _, err := datasets.SynthesizeDegrees("soc-LiveJournal1", float64(n)/4847571.0, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", len(degrees)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				order.MultiLists(degrees, 8, 0.1)
			}
		})
	}
}

// BenchmarkDistMem measures the future-work distributed prototype across
// node counts.
func BenchmarkDistMem(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := dist.Solve(g, dist.Config{Nodes: nodes}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockedFloydWarshall positions the tiled O(n^3) baseline.
func BenchmarkBlockedFloydWarshall(b *testing.B) {
	g := benchGraph(b, "ca-HepPh", 0.05)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baseline.BlockedFloydWarshall(g, workers)
			}
		})
	}
}

// BenchmarkSolveSubset measures the memory-bounded subset solver.
func BenchmarkSolveSubset(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.05)
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i * g.N() / len(sources))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveSubset(g, sources, core.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackPaths measures the cost of next-hop maintenance.
func BenchmarkTrackPaths(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.01)
	for _, track := range []bool{false, true} {
		name := "distances-only"
		if track {
			name = "with-paths"
		}
		b.Run(name, func(b *testing.B) {
			solveBench(b, g, core.ParAPSP, core.Options{Workers: 4, TrackPaths: track})
		})
	}
}

// BenchmarkBetweenness measures the Brandes layer over the same scheduling
// substrate.
func BenchmarkBetweenness(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.02)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				analysis.Betweenness(g, workers)
			}
		})
	}
}

// BenchmarkOracleBuild measures landmark-oracle construction, the
// past-the-memory-wall path.
func BenchmarkOracleBuild(b *testing.B) {
	g := benchGraph(b, "WordNet", 0.05)
	for _, k := range []int{8, 32} {
		b.Run(fmt.Sprintf("landmarks=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := oracle.Build(g, oracle.Options{Landmarks: k, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
