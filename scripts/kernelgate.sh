#!/bin/sh
# Kernel performance regression gate: measure a fresh (reduced-scale)
# kernelcmp report and hold it against the checked-in baseline ratios.
# Fails when any kernel regresses >10% relative to dijkstra or the auto
# selector lands >5% off the per-dataset best (plus a fixed noise
# epsilon — see scripts/kernelgate/main.go). Regenerate the baseline
# after an intentional perf change with:
#
#   scripts/kernelgate.sh -write
#
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-check}"

tmp="$(mktemp -t kernelgate.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT

# Reduced scale keeps the gate CI-sized (~n=700 graphs) while staying
# far above the regime where kernel differences vanish into noise; four
# runs are averaged per row to tame scheduler jitter on oversubscribed
# runners (the race runs at 8 workers regardless of host cores).
go run ./cmd/apspbench -scale 0.35 -threads 1,2,8 -runs 4 -kerneljson "$tmp"

if [ "$mode" = "-write" ]; then
    go run ./scripts/kernelgate -write -baseline scripts/kernelgate_baseline.json "$tmp"
else
    go run ./scripts/kernelgate -baseline scripts/kernelgate_baseline.json "$tmp"
fi
