// Command storegate is the memory-wall regression gate for the tiered
// distance store: it takes a freshly measured storebench report (see
// internal/bench/storebench.go) and fails when the tiered configuration
// stops honoring the contracts PR'd in with the store, or when its
// memory footprint regresses against the checked-in baseline.
//
// Hard contracts (gated against the fresh report alone):
//
//   - Correctness: every spot-checked answer matches core.SolveSubset
//     and the store ledger reconciles (lookups == sketch_answered +
//     t1_hits + t2_promotes + t3_promotes + misses).
//   - Scale: the tiered store serves a row set >= 10x its RAM budget,
//     with the cold tier actually engaged (cold_rows > 0).
//   - Tail: tiered p99 <= 2x the all-hot p99 on the same workload.
//
// Memory regression (gated against the baseline, ratio + additive slack
// so absolute host differences don't trip it):
//
//   - Tiered Go heap in use <= baseline x (1+memTol) + memEps.
//   - Process VmRSS <= baseline x (1+memTol) + rssEps (skipped when
//     either measurement is unavailable).
//
// Usage:
//
//	go run ./scripts/storegate -baseline scripts/storegate_baseline.json report.json
//	go run ./scripts/storegate -write -baseline scripts/storegate_baseline.json report.json
//
// -write regenerates the baseline from the report instead of gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parapsp/internal/bench"
)

const (
	// p99Cap is the acceptance contract: the tiered tail may not exceed
	// twice the all-hot tail.
	p99Cap = 2.0
	// scaleFloor is the acceptance contract: >= 10x the RAM budget.
	scaleFloor = 10.0
	// memTol and the additive epsilons absorb allocator and runtime
	// noise: the heap measurement is post-GC but arena-pool sizing
	// wobbles by a few hundred KiB run to run, and VmRSS includes the
	// Go runtime's own pages.
	memTol = 0.5
	memEps = 4 << 20
	rssEps = 16 << 20
)

func load(path string) (*bench.StoreReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.StoreReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	write := flag.Bool("write", false, "regenerate the baseline from the report instead of gating")
	baselinePath := flag.String("baseline", "scripts/storegate_baseline.json", "checked-in baseline report")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: storegate [-write] -baseline base.json report.json")
		os.Exit(2)
	}
	rep, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var fails []string
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}

	// Hard contracts, baseline-independent.
	check(rep.ExactMismatch == 0, "%d of %d spot-checked answers mismatch the subset solver",
		rep.ExactMismatch, rep.ExactChecked)
	check(rep.ExactChecked > 0, "no exactness spot-checks ran")
	lookups := rep.Metrics["serve.store.lookups"]
	sum := rep.Metrics["serve.store.sketch_answered"] + rep.Metrics["serve.store.t1_hits"] +
		rep.Metrics["serve.store.t2_promotes"] + rep.Metrics["serve.store.t3_promotes"] +
		rep.Metrics["serve.store.misses"]
	check(rep.LedgerOK && lookups == sum && lookups > 0,
		"store ledger does not reconcile: lookups=%d sum=%d ledger_ok=%v", lookups, sum, rep.LedgerOK)
	check(rep.ScaleFactor >= scaleFloor, "scale factor %.1fx below the %.0fx contract",
		rep.ScaleFactor, scaleFloor)
	check(rep.ColdRows > 0, "cold tier never engaged (cold_rows=0)")
	check(rep.Metrics["store.decode_errors"] == 0, "%d frame decode errors",
		rep.Metrics["store.decode_errors"])
	check(rep.P99Ratio > 0 && rep.P99Ratio <= p99Cap,
		"tiered p99 is %.2fx the all-hot p99 (cap %.1fx)", rep.P99Ratio, p99Cap)

	if *write {
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "storegate: refusing baseline:", f)
			}
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("storegate: wrote baseline", *baselinePath)
		return
	}

	base, err := load(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("baseline (regenerate with -write): %w", err))
	}
	heapCap := int64(float64(base.TierHeapBytes)*(1+memTol)) + memEps
	check(rep.TierHeapBytes <= heapCap,
		"tiered heap %d bytes exceeds baseline %d (cap %d)", rep.TierHeapBytes, base.TierHeapBytes, heapCap)
	if rep.VmRSSBytes > 0 && base.VmRSSBytes > 0 {
		rssCap := int64(float64(base.VmRSSBytes)*(1+memTol)) + rssEps
		check(rep.VmRSSBytes <= rssCap,
			"VmRSS %d bytes exceeds baseline %d (cap %d)", rep.VmRSSBytes, base.VmRSSBytes, rssCap)
	}

	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "storegate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("storegate: OK (scale %.0fx, p99 ratio %.2f, heap %d, exact %d/%d)\n",
		rep.ScaleFactor, rep.P99Ratio, rep.TierHeapBytes, rep.ExactChecked-rep.ExactMismatch, rep.ExactChecked)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "storegate:", err)
	os.Exit(1)
}
