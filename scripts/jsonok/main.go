// Command jsonok validates that each argument file parses as JSON, so
// shell gates (scripts/check.sh) can fail on an exporter that emits a
// syntactically broken trace or metrics blob without needing jq in the
// container.
//
// Usage: go run ./scripts/jsonok file.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonok file.json [file.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jsonok:", err)
			bad = true
			continue
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			fmt.Fprintf(os.Stderr, "jsonok: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
