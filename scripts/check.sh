#!/bin/sh
# Repo-wide gate: build, vet, race-enabled tests, and a one-iteration pass
# over the kernel microbenchmarks so a kernel that compiles but traps (or a
# benchmark rig that rots) fails fast. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== kernel microbenchmarks (1 iteration, smoke)"
go test -run '^$' -bench . -benchtime=1x ./internal/kernel/

echo "== obs exporters (trace + metrics smoke, tiny scale)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/apspbench -scale 0.2 -threads 1,2 -trace "$tmpdir/trace.json" \
    -metrics > "$tmpdir/metrics.json"
go run ./scripts/jsonok "$tmpdir/trace.json" "$tmpdir/metrics.json"

echo "OK"
