#!/bin/sh
# Repo-wide gate: build, vet, the default test pass (which executes the
# seeded fuzz corpora as regression cases and the cmd end-to-end smokes),
# a race-enabled pass over the concurrent machinery, and one-iteration
# smokes of the bench/exporter rigs so a path that compiles but traps
# fails fast. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -shuffle=on ./... (fuzz seed corpus + cmd e2e smoke included)"
go test -shuffle=on ./...

echo "== go test -race . ./internal/..."
go test -race . ./internal/...

echo "== kernel microbenchmarks (1 iteration, smoke)"
go test -run '^$' -bench . -benchtime=1x ./internal/kernel/

echo "== kernel differential suite (registry battery + batch engines vs scalar, race-enabled)"
go test -race -run 'TestBatch|TestKernel' -count=1 ./internal/core/

echo "== cluster chaos e2e + shard-config fuzz corpus (race-enabled)"
go test -race -run 'TestClusterChaos|TestRouter|TestDifferentialPartitioning|FuzzParseShardConfig' \
    -count=1 ./internal/e2e/ ./internal/cluster/

echo "== dynamic-graph differential suite + /edge fuzz corpus (race-enabled)"
go test -race -run 'TestDynamic|TestMetamorphic|TestRepair|TestStore|TestSnapshot|TestVersionPinned|TestEdgeEndpoint|TestMutate|FuzzParseEdgeOp' \
    -count=1 ./internal/dyn/ ./internal/serve/ ./internal/graph/

echo "== admission suite: quotas, tiers, ledger reconciliation via /metrics + tier fuzz corpus (race-enabled)"
go test -race -run 'Test|FuzzParseTier' -count=1 ./internal/admit/
go test -race -run 'TestTierDifferentialUnderLoad|TestQuotaLedgerOverHTTP|TestBackpressure' -count=1 ./internal/serve/
go test -race -run 'TestRouterTierPassthrough|TestRouterEdgeQuota' -count=1 ./internal/cluster/

echo "== obs exporters (trace + metrics smoke, tiny scale)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/apspbench -scale 0.2 -threads 1,2 -trace "$tmpdir/trace.json" \
    -metrics > "$tmpdir/metrics.json"
go run ./scripts/jsonok "$tmpdir/trace.json" "$tmpdir/metrics.json"

echo "== serve bench (tiny scale, report JSON smoke)"
go run ./cmd/apspbench -scale 0.1 -servejson "$tmpdir/serve.json"
go run ./scripts/jsonok "$tmpdir/serve.json"

echo "== batch bench (tiny scale, report JSON smoke; asserts batch == scalar checksums)"
go run ./cmd/apspbench -scale 0.05 -batchjson "$tmpdir/batch.json"
go run ./scripts/jsonok "$tmpdir/batch.json"

echo "== kernel comparison bench (tiny scale, report JSON smoke; asserts kernel checksums agree)"
go run ./cmd/apspbench -scale 0.2 -threads 1,2 -kerneljson "$tmpdir/kernelcmp.json"
go run ./scripts/jsonok "$tmpdir/kernelcmp.json"

echo "== kernel regression gate (reduced-scale measurement vs checked-in baseline)"
scripts/kernelgate.sh

echo "== tiered-store memory gate (reduced-scale storebench vs checked-in baseline)"
scripts/storegate.sh

echo "OK"
