#!/bin/sh
# Repo-wide gate: build, vet, race-enabled tests, and a one-iteration pass
# over the kernel microbenchmarks so a kernel that compiles but traps (or a
# benchmark rig that rots) fails fast. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== kernel microbenchmarks (1 iteration, smoke)"
go test -run '^$' -bench . -benchtime=1x ./internal/kernel/

echo "OK"
