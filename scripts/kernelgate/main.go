// Command kernelgate is the kernel performance regression gate: it
// compares a freshly measured kernelcmp report against the checked-in
// baseline and fails when a kernel's relative cost regressed or the
// adaptive selector drifted off the measured best.
//
// Comparison is ratio-against-ratio, never wall clock against wall clock:
// every report row carries vs_dijkstra, the kernel's elapsed relative to
// the same run's dijkstra row, so the gate is insensitive to the host's
// absolute speed. Two checks per dataset:
//
//   - Regression: a kernel's vs_dijkstra may not exceed baseline ×
//     (1+regressTol) + noiseEps. The additive term absorbs scheduling
//     noise on fast rows whose ratio jitters in absolute terms. The heap
//     ablation is exempt (see skipGate).
//   - Auto quality: the kernel the auto row RESOLVED to may not measure
//     more than the best concrete kernel's vs_dijkstra × (1+autoTol) +
//     noiseEps — the selector must track the per-dataset winner,
//     whatever it is today. The resolved kernel's own row is what gets
//     scored (the auto row re-runs identical code, so its separate
//     elapsed only adds measurement variance to the comparison).
//
// Usage:
//
//	go run ./scripts/kernelgate -baseline scripts/kernelgate_baseline.json report.json
//	go run ./scripts/kernelgate -write -baseline scripts/kernelgate_baseline.json report.json
//
// -write regenerates the baseline from the report instead of gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parapsp/internal/bench"
)

const (
	// regressTol is the satellite contract: >10% relative regression
	// fails the gate.
	regressTol = 0.10
	// autoTol is the auto-row contract: >5% off the per-dataset best
	// fails the gate.
	autoTol = 0.05
	// noiseEps absorbs absolute ratio jitter. Sized empirically: at the
	// gate's reduced scale on an oversubscribed runner, kernels that
	// measure within 5% of each other at full scale spread by up to ~0.45
	// of the dijkstra baseline between gate runs (interleaving and
	// median-of-rounds in kernelcmp already removed the systematic
	// drift; this is the residual per-row floor). 0.5 sits above that
	// floor and well below the failures the gate exists to catch — a
	// wrong lane pick measures ≈4.5×, losing row reuse ≈60×, and any
	// real kernel regression worth a CI stop is ≥2×.
	noiseEps = 0.5
)

// skipGate excludes rows from the per-kernel regression check. The heap
// ablation exists to demonstrate a ~60x gap (no row reuse), and at that
// magnitude its ratio wobbles by several absolute units run to run —
// holding it to ±10% would gate on noise, while any failure mode worth
// catching (the ablation accidentally gaining row reuse) would show up
// as a collapse nothing here tests for. Production kernels are all
// gated.
var skipGate = map[string]bool{"heap": true}

func load(path string) (*bench.KernelCompareReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.KernelCompareReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// rowsByKernel indexes one dataset's rows.
func rowsByKernel(ds bench.KernelCompareDataset) map[string]bench.KernelCompareResult {
	m := make(map[string]bench.KernelCompareResult, len(ds.Rows))
	for _, r := range ds.Rows {
		m[r.Kernel] = r
	}
	return m
}

func main() {
	baseline := flag.String("baseline", "scripts/kernelgate_baseline.json", "checked-in baseline report")
	write := flag.Bool("write", false, "regenerate the baseline from the report instead of gating")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kernelgate [-write] [-baseline base.json] report.json")
		os.Exit(2)
	}
	rep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelgate:", err)
		os.Exit(1)
	}

	if *write {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "kernelgate:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baseline, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kernelgate:", err)
			os.Exit(1)
		}
		fmt.Printf("kernelgate: baseline %s regenerated from %s\n", *baseline, flag.Arg(0))
		return
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelgate:", err)
		os.Exit(1)
	}
	baseSets := make(map[string]map[string]bench.KernelCompareResult, len(base.Datasets))
	for _, ds := range base.Datasets {
		baseSets[ds.Dataset] = rowsByKernel(ds)
	}

	fail := false
	for _, ds := range rep.Datasets {
		rows := rowsByKernel(ds)
		bRows := baseSets[ds.Dataset]
		if bRows == nil {
			fmt.Printf("kernelgate: %s: no baseline dataset, skipping regression check\n", ds.Dataset)
		}

		// Per-kernel regression against the baseline ratio.
		for _, r := range ds.Rows {
			if r.Kernel == "auto" || skipGate[r.Kernel] || bRows == nil {
				continue // auto is judged against the live best, below
			}
			b, ok := bRows[r.Kernel]
			if !ok {
				fmt.Printf("kernelgate: %s/%s: new kernel, no baseline row\n", ds.Dataset, r.Kernel)
				continue
			}
			limit := b.VsDijkstra*(1+regressTol) + noiseEps
			if r.VsDijkstra > limit {
				fmt.Printf("kernelgate: FAIL %s/%s: vs_dijkstra %.3f exceeds baseline %.3f +%d%% (+%.2f noise) = %.3f\n",
					ds.Dataset, r.Kernel, r.VsDijkstra, b.VsDijkstra, int(regressTol*100), noiseEps, limit)
				fail = true
			}
		}

		// Auto must track the per-dataset best concrete kernel.
		auto, ok := rows["auto"]
		if !ok {
			fmt.Printf("kernelgate: FAIL %s: report has no auto row\n", ds.Dataset)
			fail = true
			continue
		}
		best := ""
		bestRatio := 0.0
		for _, r := range ds.Rows {
			if r.Kernel == "auto" {
				continue
			}
			if best == "" || r.VsDijkstra < bestRatio {
				best, bestRatio = r.Kernel, r.VsDijkstra
			}
		}
		// Score the selector by its decision, not by re-measuring it: the
		// auto row runs the resolved kernel's exact code, so its own
		// elapsed is a second noisy draw of a kernel already in the
		// report (and the last row of the report besides, where runner
		// drift accumulates). The resolved kernel's row is the same
		// quantity with one fewer measurement in the comparison. Fall
		// back to the auto row itself only if the resolved kernel is not
		// raced (cannot happen with today's weighted datasets).
		scored := auto.VsDijkstra
		if r, ok := rows[auto.Resolved]; ok {
			scored = r.VsDijkstra
		}
		limit := bestRatio*(1+autoTol) + noiseEps
		if scored > limit {
			fmt.Printf("kernelgate: FAIL %s: auto (→%s) vs_dijkstra %.3f exceeds best kernel %s %.3f +%d%% (+%.2f noise) = %.3f\n",
				ds.Dataset, auto.Resolved, scored, best, bestRatio, int(autoTol*100), noiseEps, limit)
			fail = true
		} else {
			fmt.Printf("kernelgate: %s: auto→%s %.3f vs best %s %.3f — ok\n",
				ds.Dataset, auto.Resolved, scored, best, bestRatio)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("kernelgate: ok")
}
