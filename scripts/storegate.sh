#!/bin/sh
# Memory-wall regression gate for the tiered distance store: measure a
# fresh (reduced-scale) storebench report and hold it against the
# checked-in baseline. Fails when the store ledger stops reconciling, a
# spot-checked answer diverges from the subset solver, the served row
# set drops below 10x the RAM budget, the tiered p99 exceeds 2x the
# all-hot p99, or heap/RSS regresses >50% against the baseline (see
# scripts/storegate/main.go). Regenerate the baseline after an
# intentional memory-profile change with:
#
#   scripts/storegate.sh -write
#
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-check}"

tmp="$(mktemp -t storegate.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT

# Reduced scale keeps the gate CI-sized (n=800, ~2.4 MiB all-hot matrix)
# while still driving all three tiers plus the disk arena at a 16x
# byte-budget squeeze; the workload and spot-checks are deterministic
# under the fixed seed, so only the timing side wobbles.
go run ./cmd/apspbench -scale 0.4 -threads 1,2 -storejson "$tmp"

if [ "$mode" = "-write" ]; then
    go run ./scripts/storegate -write -baseline scripts/storegate_baseline.json "$tmp"
else
    go run ./scripts/storegate -baseline scripts/storegate_baseline.json "$tmp"
fi
