package parapsp

import "parapsp/internal/core"

// coreOptionsForTest gives parapsp_test.go a core.Options value without
// importing the internal package in the public-facing test file.
func coreOptionsForTest() core.Options {
	return core.Options{Workers: 2, PaperQueue: true}
}
